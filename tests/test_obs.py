"""Unit tests for :mod:`repro.obs`: tracer, metrics registry, exporters.

Trace-propagation tests that exercise the serving stack (engine pool
workers, single-flight joins, federation fan-out) live in
``tests/test_obs_propagation.py``; this file pins the subsystem's own
contracts — span lifecycle and parenting, the no-op fast path, histogram
quantile math, Prometheus rendering and the exporter formats.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    NOOP_TRACER,
    JsonlExporter,
    MetricsRegistry,
    NoopTracer,
    RingBufferExporter,
    Span,
    TraceContext,
    Tracer,
    export_jsonl,
    percentile,
    render_span_tree,
    summarize_latencies,
)


def make_tracer(ring: RingBufferExporter | None = None, timer=None):
    ring = ring if ring is not None else RingBufferExporter()
    return Tracer(timer=timer, exporters=(ring,)), ring


class TestTracer:
    def test_nested_spans_parent_automatically(self):
        tracer, ring = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        spans = ring.spans()
        assert [s.name for s in spans] == ["inner", "outer"]  # finish order
        assert spans[1].parent_id is None

    def test_sibling_spans_share_the_parent(self):
        tracer, ring = make_tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b = ring.spans()[0], ring.spans()[1]
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_simulated_clock_gives_exact_durations(self):
        fake = [10.0]
        tracer, ring = make_tracer(timer=lambda: fake[0])
        with tracer.span("outer"):
            fake[0] = 10.25
            with tracer.span("inner"):
                fake[0] = 10.75
        by_name = {s.name: s for s in ring.spans()}
        assert by_name["inner"].duration_ms == pytest.approx(500.0)
        assert by_name["outer"].duration_ms == pytest.approx(750.0)

    def test_exception_marks_error_and_propagates(self):
        tracer, ring = make_tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = ring.spans()
        assert span.status == "error"
        assert span.attrs["error"] == "ValueError"
        assert span.end is not None

    def test_attach_adopts_remote_parent_across_threads(self):
        tracer, ring = make_tracer()
        captured: dict[str, Span] = {}

        def worker(ctx: TraceContext) -> None:
            with tracer.attach(ctx):
                with tracer.span("child") as child:
                    captured["child"] = child

        with tracer.span("parent") as parent:
            ctx = tracer.context()
            thread = threading.Thread(target=worker, args=(ctx,))
            thread.start()
            thread.join()
        child = captured["child"]
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id

    def test_attach_none_is_a_noop_scope(self):
        tracer, ring = make_tracer()
        with tracer.attach(None):
            with tracer.span("root") as span:
                pass
        assert span.parent_id is None

    def test_context_is_none_outside_any_span(self):
        tracer, _ = make_tracer()
        assert tracer.context() is None
        assert tracer.current() is None

    def test_detached_start_end_exports(self):
        fake = [0.0]
        tracer, ring = make_tracer(timer=lambda: fake[0])
        span = tracer.start("manual")
        fake[0] = 0.001
        tracer.end(span, status="error")
        assert ring.spans() == [span]
        assert span.status == "error"
        assert span.duration_ms == pytest.approx(1.0)

    def test_links_survive_to_dict(self):
        tracer, ring = make_tracer()
        with tracer.span("waiter", links=("s00000a",)) as span:
            pass
        assert span.to_dict()["links"] == ["s00000a"]


class TestNoopTracer:
    def test_disabled_and_falsy(self):
        assert NOOP_TRACER.enabled is False
        with NOOP_TRACER.span("anything") as sp:
            assert not sp
            sp.set("k", "v").set_status("error")  # all no-ops, chainable
        assert NOOP_TRACER.context() is None

    def test_span_and_attach_return_shared_singletons(self):
        # Zero allocation on the hot path: every call hands back the
        # same objects.
        assert NOOP_TRACER.span("a") is NOOP_TRACER.span("b")
        assert NOOP_TRACER.attach(None) is NOOP_TRACER.attach(None)
        assert NoopTracer().span("x") is NOOP_TRACER.span("x")


class TestPercentileHelpers:
    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 51.0
        assert percentile(samples, 0.95) == 95.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile([], 0.5) == 0.0

    def test_summarize_latencies(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0
        assert set(summary) == {"mean", "p50", "p95", "p99", "max"}
        assert summarize_latencies([]) == {
            "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
        }


class TestMetricsRegistry:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        family = registry.counter("hits", ("endpoint",), "help text")
        family.labels("a").inc()
        family.labels("a").inc(2)
        family.labels("b").inc()
        assert family.labels("a").value == 3
        assert family.total() == 4
        assert family.label_values() == ["a", "b"]
        assert family.get("missing") is None

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth").labels()
        gauge.set(5.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 4.0

    def test_redeclaration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("n", ("x",))
        assert registry.counter("n", ("x",)) is first
        with pytest.raises(ValueError):
            registry.gauge("n", ("x",))
        with pytest.raises(ValueError):
            registry.counter("n", ("x", "y"))

    def test_label_arity_is_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("n", ("a", "b"))
        with pytest.raises(ValueError):
            family.labels("only-one")

    def test_histogram_quantiles_bracket_observations(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms").labels()
        for value in [0.2, 0.4, 1.5, 3.0, 8.0, 40.0, 90.0, 400.0]:
            hist.observe(value)
        assert hist.count == 8
        assert hist.min == 0.2
        assert hist.max == 400.0
        summary = hist.summary()
        # Monotone and clamped: p50 <= p95 <= p99 <= max, all within range.
        assert 0.2 <= summary["p50"] <= summary["p95"] <= summary["p99"] <= 400.0
        assert summary["max"] == 400.0
        assert summary["mean"] == pytest.approx(sum(
            [0.2, 0.4, 1.5, 3.0, 8.0, 40.0, 90.0, 400.0]) / 8)

    def test_histogram_single_observation_is_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms").labels()
        hist.observe(7.5)
        summary = hist.summary()
        assert summary["p50"] == 7.5
        assert summary["p99"] == 7.5
        assert summary["max"] == 7.5

    def test_histogram_overflow_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms").labels()
        hist.observe(99999.0)  # beyond the last bound
        bounds = hist.bucket_counts()
        assert bounds[-1] == (float("inf"), 1)
        assert all(count == 0 for _, count in bounds[:-1])
        assert hist.quantile(0.5) == 99999.0

    def test_histogram_exemplar_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", exemplar_window=3).labels()
        for value in [1.0, 2.0, 3.0, 4.0]:
            hist.observe(value)
        assert hist.samples() == (2.0, 3.0, 4.0)
        plain = registry.histogram("other").labels()
        plain.observe(1.0)
        assert plain.samples() == ()

    def test_collect_is_one_consistent_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", ("endpoint",), "c help").labels("e").inc()
        registry.histogram("h").labels().observe(2.0)
        snap = registry.collect()
        assert snap["c"]["type"] == "counter"
        assert snap["c"]["series"][("e",)] == 1
        hist = snap["h"]["series"][()]
        assert hist["count"] == 1
        assert hist["summary"]["max"] == 2.0
        assert hist["samples"] == ()

    def test_render_prometheus_format(self):
        registry = MetricsRegistry()
        registry.counter("req_total", ("ep",), "requests").labels("a b").inc(3)
        registry.histogram(
            "lat_ms", buckets=(1.0, 10.0)
        ).labels().observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert 'req_total{ep="a b"} 3' in text
        assert 'lat_ms_bucket{le="1"} 0' in text
        assert 'lat_ms_bucket{le="10"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_sum 5" in text
        assert "lat_ms_count 1" in text

    def test_reset_clears_series_keeps_declarations(self):
        registry = MetricsRegistry()
        family = registry.counter("n", ("x",))
        family.labels("a").inc()
        registry.reset()
        assert family.total() == 0
        assert registry.family("n") is family

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )


def _finished_span(tracer: Tracer, name: str, parent=None) -> Span:
    span = tracer.start(name, parent=parent)
    return tracer.end(span)


class TestExporters:
    def test_ring_buffer_caps_and_groups(self):
        ring = RingBufferExporter(capacity=2)
        tracer = Tracer(exporters=(ring,))
        for name in ("a", "b", "c"):
            _finished_span(tracer, name)
        assert len(ring) == 2
        assert [s.name for s in ring.spans()] == ["b", "c"]
        traces = ring.traces()
        assert set(traces) == {s.trace_id for s in ring.spans()}
        ring.clear()
        assert len(ring) == 0

    def test_ring_trace_filters_by_id(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=(ring,))
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        _finished_span(tracer, "unrelated")
        got = ring.trace(root.trace_id)
        assert {s.name for s in got} == {"root", "child"}

    def test_jsonl_exporter_writes_one_line_per_span(self):
        buffer = io.StringIO()
        tracer = Tracer(exporters=(JsonlExporter(buffer),))
        with tracer.span("a") as span:
            span.set("k", "v")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attrs"] == {"k": "v"}
        assert record["status"] == "ok"

    def test_export_jsonl_roundtrips(self):
        ring = RingBufferExporter()
        tracer = Tracer(exporters=(ring,))
        _finished_span(tracer, "x")
        text = export_jsonl(ring.spans())
        assert json.loads(text.strip())["name"] == "x"

    def test_render_span_tree_indents_and_annotates(self):
        fake = [0.0]
        ring = RingBufferExporter()
        tracer = Tracer(timer=lambda: fake[0], exporters=(ring,))
        with tracer.span("root") as root:
            root.set("cache", "miss")
            fake[0] = 0.001
            with tracer.span("child") as child:
                child.set_status("error")
                fake[0] = 0.002
        tree = render_span_tree(ring.spans())
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert "cache=miss" in lines[0]
        assert lines[1].startswith("  child")
        assert "[error]" in lines[1]

    def test_render_span_tree_orphans_render_as_roots(self):
        tracer = Tracer()
        parent = _finished_span(tracer, "lost-parent")
        child = tracer.start("survivor", parent=parent)
        tracer.end(child)
        tree = render_span_tree([child])  # parent rolled out of the ring
        assert tree.splitlines()[0].startswith("survivor")

    def test_render_span_tree_shows_links(self):
        tracer = Tracer()
        span = tracer.start("join", links=("s00042",))
        tracer.end(span)
        assert "~> s00042" in render_span_tree([span])
