"""End-to-end test of the paper's §1 motivating scenario.

"Metadata can enable an employee who recently joined the marketing
department to find the marketing attribution dashboard endorsed by the
manager and frequently viewed by the team members.  The employee can
further check the lineage of the data underlying the found dashboard to
get a quick sense of what tables to trust."
"""

import pytest

from repro.catalog.model import Artifact, ArtifactType, User
from repro.synth import SynthConfig, generate_catalog
from repro.synth.workload import burst_usage
from repro.workbook.app import WorkbookApp


@pytest.fixture
def marketing_world():
    """A catalog with a marketing team, an endorsed attribution dashboard
    frequently viewed by the team, and its upstream lineage."""
    store = generate_catalog(SynthConfig(seed=31, n_tables=80))
    marketing = next(t for t in store.teams() if t.name == "Marketing")
    manager = next(u for u in store.users() if u.role == "manager")

    # The dashboard the scenario is about, built over a marketing table.
    table = store.artifact(next(
        aid for aid in store.by_tag("marketing")
        if store.artifact(aid).artifact_type is ArtifactType.TABLE
    ))
    dashboard = store.add_artifact(Artifact(
        id="dash-attribution",
        name="Marketing Attribution Dashboard",
        artifact_type=ArtifactType.DASHBOARD,
        description="Campaign attribution across channels.",
        owner_id=manager.id,
        team_ids=(marketing.id,),
        created_at=store.clock.now() - 40 * 86400,
        tags=("marketing", "attribution"),
    ))
    store.lineage.add_edge(table.id, dashboard.id, "derives")
    store.grant_badge(dashboard.id, "endorsed", manager.id)
    team_members = list(marketing.member_ids)[:4] or [manager.id]
    # "frequently viewed by the team members" — enough views to dominate
    # the Zipf-background workload within the team's counts.
    burst_usage(store, dashboard.id, team_members, views=400)

    # The new employee, fresh on the marketing team.
    newbie = store.add_user(User(
        id="user-newbie", name="Noa Newhire", role="analyst",
        team_ids=(marketing.id,),
    ))
    return WorkbookApp(store), newbie, dashboard, table


class TestIntroScenario:
    def test_team_view_surfaces_the_dashboard(self, marketing_world):
        app, newbie, dashboard, _ = marketing_world
        session = app.session(newbie.id)
        session.open_home()
        tab = session.select_tab("Popular With Your Team")
        # frequently viewed by the team -> near the top of the team view
        assert dashboard.id in tab.view.artifact_ids()[:5]

    def test_filter_pins_it_down(self, marketing_world):
        app, newbie, dashboard, _ = marketing_world
        session = app.session(newbie.id)
        session.open_home()
        session.select_tab("Popular With Your Team")
        filtered = session.filter_active_view(
            "type: dashboard badged: endorsed"
        )
        assert filtered.artifact_ids() == [dashboard.id]

    def test_search_route_works_too(self, marketing_world):
        app, newbie, dashboard, _ = marketing_world
        session = app.session(newbie.id)
        result = session.search(
            "type: dashboard badged: endorsed & attribution"
        )
        assert result.artifact_ids() == [dashboard.id]

    def test_lineage_reveals_upstream_tables(self, marketing_world):
        app, newbie, dashboard, table = marketing_world
        session = app.session(newbie.id)
        preview = session.select_artifact(dashboard.id)
        # the preview already names the upstream table (Figure 7D)
        assert table.name in preview.upstream
        # and the lineage graph view reaches it for deeper inspection
        surfaced = session.explore_selection()
        lineage = next(
            s for s in surfaced if s.provider_name == "lineage_graph"
        )
        assert table.id in lineage.view.artifact_ids()

    def test_upstream_trust_signal_is_inspectable(self, marketing_world):
        app, newbie, dashboard, table = marketing_world
        session = app.session(newbie.id)
        upstream_preview = session.select_artifact(table.id)
        # "what tables to trust": usage + badges + lineage of the source
        assert upstream_preview.artifact_type == "table"
        assert upstream_preview.view_count >= 0
        assert dashboard.name in upstream_preview.downstream
