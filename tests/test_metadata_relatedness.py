"""Tests for joinability, similarity ensembles, and embeddings."""

import pytest

from repro.catalog.model import Artifact, Column
from repro.metadata.embedding import EmbeddingIndex
from repro.metadata.joinability import JoinabilityIndex
from repro.metadata.similarity import (
    EnsembleSimilarity,
    SchemaSimilarity,
    SemanticSimilarity,
)


class TestJoinability:
    def test_finds_shared_key_join(self, tiny_store):
        index = JoinabilityIndex(tiny_store)
        edges = index.joinable("t-orders")
        partners = {e.dst for e in edges}
        # ORDERS.customer_id overlaps CUSTOMERS.customer_id (20/40 values)
        assert "t-customers" in partners
        edge = next(e for e in edges if e.dst == "t-customers")
        assert edge.src_column == "customer_id"
        assert edge.dst_column == "customer_id"
        assert 0.2 < edge.score <= 1.0

    def test_unrelated_table_not_joinable(self, tiny_store):
        index = JoinabilityIndex(tiny_store)
        partners = {e.dst for e in index.joinable("t-orders")}
        assert "t-web" not in partners

    def test_join_graph_contains_anchor(self, tiny_store):
        index = JoinabilityIndex(tiny_store)
        nodes, edges = index.join_graph("t-orders")
        assert "t-orders" in nodes
        assert all(e.src in nodes and e.dst in nodes for e in edges)

    def test_columns_without_samples_skipped(self, tiny_store):
        index = JoinabilityIndex(tiny_store).build()
        # "amount" and "name" have no samples: only 4 sketchable columns
        assert index.sketch_count == 4

    def test_non_tabular_artifacts_not_sketched(self, tiny_store):
        index = JoinabilityIndex(tiny_store)
        assert index.add_artifact(tiny_store.artifact("d-sales")) == 0

    def test_remove_artifact(self, tiny_store):
        index = JoinabilityIndex(tiny_store).build()
        index.remove_artifact("t-customers")
        partners = {e.dst for e in index.joinable("t-orders")}
        assert "t-customers" not in partners

    def test_build_idempotent(self, tiny_store):
        index = JoinabilityIndex(tiny_store)
        index.build()
        count = index.sketch_count
        index.build()
        assert index.sketch_count == count

    def test_synth_catalog_has_join_structure(self, synth_store):
        index = JoinabilityIndex(synth_store)
        tables = synth_store.by_type("table")
        with_joins = sum(
            1 for table_id in tables[:20] if index.joinable(table_id)
        )
        assert with_joins >= 10  # shared key columns create join paths


class TestSemanticSimilarity:
    def test_similar_shares_vocabulary(self, tiny_store):
        sim = SemanticSimilarity(tiny_store)
        hits = sim.similar("t-orders")
        ids = [h.artifact_id for h in hits]
        assert "v-orders" in ids  # "Orders Chart ... over ORDERS"

    def test_search(self, tiny_store):
        sim = SemanticSimilarity(tiny_store)
        hits = sim.search("customer dimension")
        assert hits[0].artifact_id == "t-customers"

    def test_scores_in_range(self, tiny_store):
        for hit in SemanticSimilarity(tiny_store).similar("t-orders"):
            assert 0.0 <= hit.score <= 1.0


class TestSchemaSimilarity:
    def test_shared_columns_score(self, tiny_store):
        sim = SchemaSimilarity(tiny_store)
        hits = sim.similar("t-orders")
        ids = {h.artifact_id for h in hits}
        assert "t-customers" in ids  # shares customer_id:integer

    def test_no_columns_no_hits(self, tiny_store):
        assert SchemaSimilarity(tiny_store).similar("d-sales") == []

    def test_score_is_jaccard(self, tiny_store):
        sim = SchemaSimilarity(tiny_store)
        hit = next(
            h for h in sim.similar("t-orders")
            if h.artifact_id == "t-customers"
        )
        # ORDERS {order_id, customer_id, amount}, CUSTOMERS {customer_id,
        # name} -> intersection 1, union 4
        assert hit.score == pytest.approx(0.25)


class TestEnsemble:
    def test_combines_measures(self, tiny_store):
        ensemble = EnsembleSimilarity(tiny_store)
        hits = ensemble.similar("t-orders")
        assert hits  # non-empty
        ids = [h.artifact_id for h in hits]
        assert "t-customers" in ids

    def test_weights_validated(self, tiny_store):
        with pytest.raises(ValueError, match="unknown similarity measures"):
            EnsembleSimilarity(tiny_store, weights={"embeddings": 1.0})

    def test_zero_weight_disables_measure(self, tiny_store):
        semantic_only = EnsembleSimilarity(
            tiny_store, weights={"semantic": 1.0, "schema": 0.0}
        )
        schema_only = EnsembleSimilarity(
            tiny_store, weights={"semantic": 0.0, "schema": 1.0}
        )
        semantic_ids = [h.artifact_id for h in semantic_only.similar("t-orders")]
        schema_ids = [h.artifact_id for h in schema_only.similar("t-orders")]
        assert semantic_ids != schema_ids

    def test_sorted_descending(self, tiny_store):
        hits = EnsembleSimilarity(tiny_store).similar("t-orders")
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)


class TestEmbedding:
    def test_every_artifact_gets_coordinates(self, tiny_store):
        index = EmbeddingIndex(tiny_store)
        coords = index.all_coordinates()
        assert set(coords) == set(tiny_store.artifact_ids())

    def test_deterministic(self, tiny_store):
        a = EmbeddingIndex(tiny_store).all_coordinates()
        b = EmbeddingIndex(tiny_store).all_coordinates()
        assert a == b

    def test_unknown_artifact_origin(self, tiny_store):
        assert EmbeddingIndex(tiny_store).coordinates("ghost") == (0.0, 0.0)

    def test_coordinates_not_all_identical(self, tiny_store):
        coords = EmbeddingIndex(tiny_store).all_coordinates()
        assert len({xy for xy in coords.values()}) > 1

    def test_invalidate_recomputes(self, tiny_store):
        index = EmbeddingIndex(tiny_store)
        index.build()
        tiny_store.record("t-web", "u-ann", "view")
        index.invalidate()
        coords = index.all_coordinates()
        assert set(coords) == set(tiny_store.artifact_ids())

    def test_empty_store(self):
        from repro.catalog.store import CatalogStore

        index = EmbeddingIndex(CatalogStore())
        assert index.all_coordinates() == {}

    def test_single_artifact(self):
        from repro.catalog.store import CatalogStore

        store = CatalogStore()
        store.add_artifact(Artifact(id="a", name="A", artifact_type="table",
                                    columns=(Column("x", "integer"),)))
        coords = EmbeddingIndex(store).all_coordinates()
        assert coords == {"a": (0.0, 0.0)}

    def test_text_dims_validation(self, tiny_store):
        with pytest.raises(ValueError):
            EmbeddingIndex(tiny_store, text_dims=1)
