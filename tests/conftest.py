"""Shared fixtures.

``tiny_store`` is a hand-built catalog with exactly known contents for
precise assertions; ``synth_store`` and ``study_app`` exercise realistic
scale.  All are deterministic.
"""

from __future__ import annotations

import pytest

from repro.catalog.model import Artifact, ArtifactType, Column, Team, User
from repro.catalog.store import CatalogStore
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog, study_catalog
from repro.util.clock import DAY, SimulationClock
from repro.workbook.app import WorkbookApp


def build_tiny_store() -> CatalogStore:
    """Four users, two teams, six artifacts with known metadata."""
    clock = SimulationClock()
    clock.advance(days=100)
    store = CatalogStore(clock=clock)
    store.add_user(User(id="u-ann", name="Ann Lee", role="analyst",
                        team_ids=("t-1",)))
    store.add_user(User(id="u-bob", name="Bob Ray", role="manager",
                        team_ids=("t-1",)))
    store.add_user(User(id="u-cyd", name="Cyd Oz", role="engineer",
                        team_ids=("t-2",)))
    store.add_user(User(id="u-dee", name="Dee Fox", role="sales",
                        team_ids=("t-2",)))
    store.add_team(Team(id="t-1", name="Alpha", admin_ids=("u-ann",),
                        member_ids=("u-ann", "u-bob")))
    store.add_team(Team(id="t-2", name="Beta", admin_ids=("u-cyd",),
                        member_ids=("u-cyd", "u-dee")))

    epoch = store.clock.epoch
    store.add_artifact(Artifact(
        id="t-orders", name="ORDERS", artifact_type=ArtifactType.TABLE,
        description="Order fact table.", owner_id="u-ann", team_ids=("t-1",),
        created_at=epoch + 10 * DAY, tags=("sales",),
        columns=(
            Column("order_id", "integer",
                   tuple(f"o-{i}" for i in range(30))),
            Column("customer_id", "integer",
                   tuple(f"c-{i}" for i in range(30))),
            Column("amount", "float"),
        ),
    ))
    store.add_artifact(Artifact(
        id="t-customers", name="CUSTOMERS", artifact_type=ArtifactType.TABLE,
        description="Customer dimension.", owner_id="u-bob", team_ids=("t-1",),
        created_at=epoch + 12 * DAY, tags=("sales", "crm"),
        columns=(
            Column("customer_id", "integer",
                   tuple(f"c-{i}" for i in range(10, 40))),
            Column("name", "string"),
        ),
    ))
    store.add_artifact(Artifact(
        id="t-web", name="WEB_LOGS", artifact_type=ArtifactType.TABLE,
        description="Raw web logs.", owner_id="u-cyd", team_ids=("t-2",),
        created_at=epoch + 20 * DAY, tags=("product",),
        columns=(
            Column("session_id", "integer",
                   tuple(f"s-{i}" for i in range(30))),
        ),
    ))
    store.add_artifact(Artifact(
        id="v-orders", name="Orders Chart",
        artifact_type=ArtifactType.VISUALIZATION,
        description="Bar chart over ORDERS.", owner_id="u-ann",
        team_ids=("t-1",), created_at=epoch + 15 * DAY, tags=("sales",),
    ))
    store.add_artifact(Artifact(
        id="d-sales", name="Sales Dashboard",
        artifact_type=ArtifactType.DASHBOARD,
        description="Embeds the orders chart.", owner_id="u-bob",
        team_ids=("t-1",), created_at=epoch + 16 * DAY, tags=("sales",),
    ))
    store.add_artifact(Artifact(
        id="w-q1", name="Q1 Analysis", artifact_type=ArtifactType.WORKBOOK,
        description="Quarterly workbook.", owner_id="u-dee",
        team_ids=("t-2",), created_at=epoch + 30 * DAY, tags=("sales",),
    ))

    store.lineage.add_edge("t-orders", "v-orders", "derives")
    store.lineage.add_edge("v-orders", "d-sales", "embeds")
    store.lineage.add_edge("t-customers", "d-sales", "derives")

    store.grant_badge("t-orders", "endorsed", "u-bob",
                      at=epoch + 11 * DAY)
    store.grant_badge("t-customers", "certified", "u-bob",
                      at=epoch + 13 * DAY)
    store.grant_badge("d-sales", "endorsed", "u-ann",
                      at=epoch + 17 * DAY)

    # Deterministic usage: ORDERS is hot, WEB_LOGS is cold.
    now = store.clock.now()
    for index in range(6):
        store.record("t-orders", "u-ann", "view", at=now - index * DAY)
    store.record("t-orders", "u-bob", "view", at=now - DAY)
    store.record("t-customers", "u-bob", "view", at=now - 2 * DAY)
    store.record("t-customers", "u-ann", "view", at=now - 4 * DAY)
    store.record("d-sales", "u-dee", "view", at=now - 3 * DAY)
    store.record("w-q1", "u-dee", "edit", at=now - DAY)
    store.record("t-orders", "u-ann", "favorite", at=now - DAY)
    return store


@pytest.fixture
def tiny_store() -> CatalogStore:
    return build_tiny_store()


@pytest.fixture
def tiny_providers(tiny_store) -> BuiltinProviders:
    return BuiltinProviders(tiny_store)


@pytest.fixture
def tiny_registry(tiny_providers) -> EndpointRegistry:
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, tiny_providers)
    return registry


@pytest.fixture
def tiny_app(tiny_store) -> WorkbookApp:
    return WorkbookApp(tiny_store)


@pytest.fixture(scope="session")
def synth_store() -> CatalogStore:
    """A mid-size generated catalog; session-scoped, treat as read-only."""
    return generate_catalog(SynthConfig(seed=7, n_tables=60,
                                        usage_events=1500))


@pytest.fixture
def study_app() -> WorkbookApp:
    return WorkbookApp(study_catalog())


@pytest.fixture
def spec():
    return default_spec()
