"""Snapshot of the supported public surface.

``repro.__all__`` is the contract embedders program against (see the
package docstring).  This test pins it: adding a name is a conscious
API decision (update the snapshot in the same change), and removing or
renaming one fails loudly here before it breaks anyone downstream.
"""

from __future__ import annotations

import inspect

import repro

#: The supported surface, sorted.  Grown deliberately, never silently.
PUBLIC_API = [
    "Artifact",
    "ArtifactType",
    "BuiltinProviders",
    "CatalogRef",
    "CatalogStore",
    "Discovery",
    "DiscoveryInterface",
    "EndpointRegistry",
    "ExecutionEngine",
    "ExecutionPolicy",
    "FederatedCatalog",
    "FederatedSearchResult",
    "HumboldtSpec",
    "JsonlExporter",
    "MetricsRegistry",
    "ProviderRequest",
    "ProviderResult",
    "ProviderSpec",
    "RankingWeight",
    "Representation",
    "RequestContext",
    "RingBufferExporter",
    "Session",
    "SpecBuilder",
    "SynthConfig",
    "Tracer",
    "Visibility",
    "WorkbookApp",
    "__version__",
    "default_registry",
    "default_spec",
    "explain",
    "generate_catalog",
    "install_builtin_endpoints",
    "parse_query",
    "render_span_tree",
    "spec_from_json",
    "spec_to_json",
    "study_catalog",
    "validate_spec",
]


class TestPublicSurface:
    def test_all_matches_the_snapshot_exactly(self):
        assert sorted(repro.__all__) == PUBLIC_API

    def test_all_is_sorted_and_unique(self):
        assert list(repro.__all__) == sorted(set(repro.__all__))

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_unexported_public_names_leak(self):
        """Everything importable from ``repro`` that is not a submodule
        or dunder must be a deliberate ``__all__`` export."""
        leaked = [
            name
            for name, value in vars(repro).items()
            if not name.startswith("_")
            and not inspect.ismodule(value)
            and name not in repro.__all__
        ]
        assert leaked == []

    def test_facade_entry_points_are_the_documented_ones(self):
        assert repro.Discovery.open is not None
        assert callable(repro.parse_query)
        assert callable(repro.explain)

    def test_internal_modules_carry_stability_notes(self):
        import repro.catalog.backend
        import repro.catalog.sqlite_backend
        import repro.core.interface.discovery
        import repro.core.query.evaluator
        import repro.core.ranking
        import repro.federation.catalog
        import repro.providers.fields

        for module in (
            repro.catalog.backend,
            repro.catalog.sqlite_backend,
            repro.core.interface.discovery,
            repro.core.query.evaluator,
            repro.core.ranking,
            repro.federation.catalog,
            repro.providers.fields,
        ):
            assert "Stability: internal" in (module.__doc__ or ""), (
                module.__name__
            )
