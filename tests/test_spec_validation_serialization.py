"""Tests for spec validation, serialization, diffing, builder."""

import pytest

from repro.core.spec.builder import SpecBuilder
from repro.core.spec.diff import diff_specs
from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.core.spec.serialization import (
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.core.spec.validation import validate_spec
from repro.errors import SpecError, SpecValidationError
from repro.providers.base import InputSpec
from repro.providers.registry import EndpointRegistry


def provider(name="p", **overrides):
    defaults = dict(name=name, endpoint=f"catalog://{name}",
                    representation="list")
    defaults.update(overrides)
    return ProviderSpec(**defaults)


class TestValidation:
    def test_valid_spec_passes(self):
        spec = HumboldtSpec(providers=(provider("a"), provider("b")))
        assert validate_spec(spec) == []

    def test_duplicate_names_flagged(self):
        spec = HumboldtSpec(providers=(provider("a"), provider("a")))
        with pytest.raises(SpecValidationError, match="declared 2 times"):
            validate_spec(spec)

    def test_duplicate_search_fields_flagged(self):
        spec = HumboldtSpec(providers=(
            provider("a", search_field="q"),
            provider("b", search_field="q"),
        ))
        with pytest.raises(SpecValidationError, match="claimed by 2"):
            validate_spec(spec)

    def test_bad_endpoint_flagged(self):
        spec = HumboldtSpec(providers=(provider("a", endpoint="not a uri"),))
        with pytest.raises(SpecValidationError, match="malformed endpoint"):
            validate_spec(spec)

    def test_unknown_ranking_field_flagged(self):
        spec = HumboldtSpec(providers=(
            provider("a", ranking=(RankingWeight("bogus", 1.0),)),
        ))
        with pytest.raises(SpecValidationError, match="unknown field 'bogus'"):
            validate_spec(spec)

    def test_custom_known_fields_allowed(self):
        spec = HumboldtSpec(
            providers=(provider("a",
                                ranking=(RankingWeight("magic", 1.0),)),),
        )
        assert validate_spec(spec, known_fields={"magic"}) == []

    def test_unknown_global_ranking_field(self):
        spec = HumboldtSpec(global_ranking=(RankingWeight("bogus", 1.0),))
        with pytest.raises(SpecValidationError, match="global ranking"):
            validate_spec(spec)

    def test_multi_required_input_search_provider_flagged(self):
        spec = HumboldtSpec(providers=(
            provider("a", inputs=(
                InputSpec("x", "user"), InputSpec("y", "badge"),
            )),
        ))
        with pytest.raises(SpecValidationError, match="at most one"):
            validate_spec(spec)

    def test_duplicate_inputs_flagged(self):
        spec = HumboldtSpec(providers=(
            provider("a", search_field=None,
                     visibility=Visibility(search=False),
                     inputs=(InputSpec("x", "user"), InputSpec("x", "team"))),
        ))
        with pytest.raises(SpecValidationError, match="input 'x' declared"):
            validate_spec(spec)

    def test_custom_home_page_unknown_provider_tolerated(self):
        # Spec drift (a page referencing a removed provider) must not make
        # the spec invalid — the renderer skips such entries (§4.3).
        spec = HumboldtSpec(
            providers=(provider("a"),),
            custom={"team_home_pages": [
                {"team": "t-1", "providers": ["ghost"]},
            ]},
        )
        assert validate_spec(spec) == []

    def test_custom_home_page_providers_must_be_list(self):
        spec = HumboldtSpec(
            custom={"team_home_pages": [{"team": "t", "providers": "oops"}]},
        )
        with pytest.raises(SpecValidationError, match="must be a list"):
            validate_spec(spec)

    def test_custom_home_page_missing_team(self):
        spec = HumboldtSpec(
            providers=(provider("a"),),
            custom={"team_home_pages": [{"providers": ["a"]}]},
        )
        with pytest.raises(SpecValidationError, match="missing 'team'"):
            validate_spec(spec)

    def test_custom_home_pages_wrong_type(self):
        spec = HumboldtSpec(custom={"team_home_pages": "oops"})
        with pytest.raises(SpecValidationError, match="must be a list"):
            validate_spec(spec)

    def test_unknown_custom_keys_ignored(self):
        spec = HumboldtSpec(custom={"acme_specific": {"x": 1}})
        assert validate_spec(spec) == []

    def test_registry_cross_check(self):
        registry = EndpointRegistry()
        spec = HumboldtSpec(providers=(provider("a"),))
        problems = validate_spec(spec, registry=registry, strict=False)
        assert any("not registered" in p for p in problems)

    def test_non_strict_returns_problems(self):
        spec = HumboldtSpec(providers=(provider("a"), provider("a")))
        problems = validate_spec(spec, strict=False)
        # Duplicate provider names also collide on the search field.
        assert any("declared 2 times" in p for p in problems)
        assert any("claimed by 2" in p for p in problems)

    def test_all_problems_collected(self):
        spec = HumboldtSpec(providers=(
            provider("a", endpoint="bad"),
            provider("a", ranking=(RankingWeight("bogus", 1.0),)),
        ))
        problems = validate_spec(spec, strict=False)
        assert len(problems) >= 3  # duplicate + endpoint + ranking


class TestSerialization:
    def test_round_trip_default_spec(self, spec):
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_round_trip_dict(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_listing1_shape(self):
        spec = HumboldtSpec(global_ranking=(
            RankingWeight("favorite", 4.3), RankingWeight("views", 1.5),
        ))
        payload = spec_to_dict(spec)
        assert payload["ranking"] == [
            {"field": "favorite", "weight": 4.3},
            {"field": "views", "weight": 1.5},
        ]

    def test_invalid_json_raises(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            spec_from_json("{nope")

    def test_non_object_payload_raises(self):
        with pytest.raises(SpecError):
            spec_from_dict(["not", "an", "object"])

    def test_missing_provider_keys_raise(self):
        with pytest.raises(SpecError, match="missing required keys"):
            spec_from_dict({"providers": [{"name": "x"}]})

    def test_missing_ranking_keys_raise(self):
        with pytest.raises(SpecError, match="'field' and 'weight'"):
            spec_from_dict({"providers": [], "ranking": [{"field": "x"}]})

    def test_custom_content_preserved(self):
        spec = HumboldtSpec(custom={"team_home_pages": [
            {"team": "t", "providers": []},
        ]})
        assert spec_from_dict(spec_to_dict(spec)).custom == spec.custom

    def test_defaults_fill_in(self):
        loaded = spec_from_dict({
            "providers": [{"name": "x", "endpoint": "c://x"}],
        })
        p = loaded.provider("x")
        assert p.representation.value == "list"
        assert p.visibility.overview
        assert p.search_field == "x"


class TestDiff:
    def test_no_changes(self, spec):
        diff = diff_specs(spec, spec)
        assert diff.is_empty()
        assert diff.summary() == "no changes"
        assert diff.touched_elements() == 0

    def test_added_and_removed(self, spec):
        updated = spec.without_provider("recents").with_provider(
            provider("brand_new")
        )
        diff = diff_specs(spec, updated)
        assert diff.added == ("brand_new",)
        assert diff.removed == ("recents",)
        assert diff.touched_elements() == 2

    def test_changed_keys_detected(self, spec):
        updated = spec.with_provider(
            spec.provider("most_viewed").with_ranking(
                RankingWeight("recency", 9.0)
            )
        )
        diff = diff_specs(spec, updated)
        assert diff.changed[0].name == "most_viewed"
        assert "ranking" in diff.changed[0].changed_keys

    def test_global_ranking_change(self, spec):
        updated = spec.with_global_ranking(RankingWeight("views", 1.0))
        assert diff_specs(spec, updated).global_ranking_changed

    def test_custom_change(self, spec):
        updated = spec.with_custom("team_home_pages", [])
        diff = diff_specs(spec, updated)
        assert diff.custom_changed == ("team_home_pages",)
        assert "custom.team_home_pages" in diff.summary()


class TestBuilder:
    def test_builds_paper_shape(self):
        spec = (
            SpecBuilder()
            .provider("joinable", "catalog://joinable", "graph",
                      category="relatedness",
                      inputs=[("artifact", "artifact", True)])
            .ranking("favorite", 4.3)
            .ranking("views", 1.5)
            .build()
        )
        assert spec.provider("joinable").representation.value == "graph"
        assert [(w.field, w.weight) for w in spec.global_ranking] == [
            ("favorite", 4.3), ("views", 1.5),
        ]

    def test_input_shorthand_forms(self):
        spec = (
            SpecBuilder()
            .provider("p", "c://p", "list", inputs=[
                ("a", "user"),
                ("b", "team", False),
                InputSpec("c", "badge"),
            ])
            # Two required inputs are fine for non-search providers; skip
            # the search-arity check here.
            .build(validate=False)
        )
        inputs = spec.provider("p").inputs
        assert inputs[0].required is True
        assert inputs[1].required is False
        assert inputs[2].input_type == "badge"

    def test_bad_input_shorthand(self):
        with pytest.raises(TypeError):
            SpecBuilder().provider("p", "c://p", "list", inputs=["oops"])

    def test_build_validates(self):
        builder = SpecBuilder().provider("a", "c://a", "list")
        builder.provider("a", "c://a", "list")  # duplicate
        with pytest.raises(SpecValidationError):
            builder.build()
        assert len(builder.build(validate=False)) == 2

    def test_team_home_page_helper(self):
        spec = (
            SpecBuilder()
            .provider("recents", "c://recents", "list")
            .team_home_page("t-1", ["recents"], title="Home")
            .build()
        )
        pages = spec.custom["team_home_pages"]
        assert pages == [{"team": "t-1", "title": "Home",
                          "providers": ["recents"]}]
