"""Tests for the default specification's contents and the error hierarchy."""

import pytest

from repro import errors
from repro.providers.base import Representation
from repro.providers.suite import default_spec


class TestDefaultSpecContents:
    """The default spec is a public artifact; pin its load-bearing facts."""

    def test_listing1_global_ranking(self, spec):
        weights = [(w.field, w.weight) for w in spec.global_ranking]
        assert weights == [("favorite", 4.3), ("views", 1.5)]

    def test_figure2_provider_classes_present(self, spec):
        names = set(spec.provider_names())
        assert {"recents", "most_viewed", "owned_by", "badged", "badged_by",
                "of_type", "joinable", "lineage", "similar",
                "embedding_map", "team_popular"} <= names

    def test_every_representation_used(self, spec):
        used = {p.representation for p in spec.providers}
        assert used == set(Representation)

    def test_categories(self, spec):
        assert set(spec.categories()) == {
            "interaction", "annotation", "team", "relatedness",
        }

    def test_type_field_aliases_of_type(self, spec):
        assert spec.search_fields()["type"].name == "of_type"

    def test_exploration_providers_require_inputs(self, spec):
        for provider in spec.visible_in("exploration"):
            if provider.visibility.overview:
                continue  # ambient providers can do both
            assert provider.required_inputs(), provider.name

    def test_all_endpoints_catalog_scheme(self, spec):
        for provider in spec.providers:
            assert provider.endpoint.startswith("catalog://"), provider.name

    def test_spec_is_self_consistent(self, spec):
        from repro.core.spec.validation import validate_spec

        assert validate_spec(spec) == []

    def test_deterministic_construction(self):
        assert default_spec() == default_spec()


class TestErrorHierarchy:
    def test_everything_is_humboldt_error(self):
        leaf_classes = [
            errors.CatalogError, errors.SpecError, errors.ProviderError,
            errors.QueryError, errors.ConfigurationError, errors.StudyError,
            errors.UnknownEntityError, errors.DuplicateEntityError,
            errors.SpecValidationError, errors.UnknownProviderError,
            errors.MissingInputError, errors.RepresentationError,
            errors.QuerySyntaxError, errors.QueryCompileError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.HumboldtError), cls

    def test_lookup_errors_are_keyerrors(self):
        assert issubclass(errors.UnknownEntityError, KeyError)
        assert issubclass(errors.UnknownProviderError, KeyError)

    def test_unknown_entity_str_is_readable(self):
        exc = errors.UnknownEntityError("artifact", "x-1")
        assert str(exc) == "unknown artifact: 'x-1'"

    def test_spec_validation_error_collects_problems(self):
        exc = errors.SpecValidationError(["a", "b"])
        assert exc.problems == ["a", "b"]
        assert "a; b" in str(exc)

    def test_query_syntax_error_position(self):
        exc = errors.QuerySyntaxError("bad", position=7, text="0123456@")
        assert exc.position == 7
        assert "position 7" in str(exc)

    def test_missing_input_error_fields(self):
        exc = errors.MissingInputError("joinable", "artifact")
        assert exc.provider == "joinable"
        assert exc.input_name == "artifact"
        assert "missing required input" in str(exc)

    def test_catching_base_class_works(self, tiny_store):
        with pytest.raises(errors.HumboldtError):
            tiny_store.artifact("ghost")
