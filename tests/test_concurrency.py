"""Multi-threaded stress tests for the execution engine and sqlite backend.

Regression coverage for the concurrency fixes that the load harness
(:mod:`repro.load`) flushed out:

* ``_breaker_for`` get-then-create minting two breakers for one endpoint,
  and a ``policy`` swap letting an in-flight fetch resurrect a retired
  breaker's state;
* request-scoped memos (``engine.scope()``) being invisible to
  ``execute_many`` pool workers;
* the lazily-built thread pool racing its own construction, and a policy
  swap leaving a stale-sized pool;
* cross-request single-flight: N concurrent identical fetches, one
  provider invocation;
* ``SqliteBackend`` parallel readers on per-thread connections.

Plus a free-for-all stress run (fetch / invalidate / policy-swap from
many threads) with invariants checked after quiescence, and a hypothesis
interleaving over the sqlite backend with concurrent readers.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.model import Artifact, User
from repro.catalog.store import CatalogStore
from repro.providers.base import (
    ProviderRequest,
    RequestContext,
    ScoredArtifact,
    list_result,
)
from repro.providers.execution import (
    BreakerState,
    ExecutionEngine,
    ExecutionPolicy,
    FetchStatus,
)
from repro.providers.registry import EndpointRegistry
from repro.errors import ProviderError


class CountingEndpoint:
    """Returns a fixed list result; counts invocations thread-safely."""

    def __init__(self, ids=("a-1", "a-2"), latency_s=0.0):
        self._lock = threading.Lock()
        self.calls = 0
        self._ids = tuple(ids)
        self._latency_s = latency_s
        self._sleep = None  # patched in by tests that need real delay

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        if self._latency_s:
            import time

            time.sleep(self._latency_s)
        return list_result([ScoredArtifact(aid) for aid in self._ids])


class FailingEndpoint:
    """Always raises a transient provider error; counts invocations."""

    def __init__(self):
        self._lock = threading.Lock()
        self.calls = 0

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        raise ProviderError("x://fail", "boom")


def _engine(endpoints: dict, **kwargs) -> ExecutionEngine:
    registry = EndpointRegistry()
    for uri, endpoint in endpoints.items():
        registry.register(uri, endpoint)
    return ExecutionEngine(registry, **kwargs)


def _hammer(n_threads: int, target) -> list:
    """Run *target(i)* on n threads simultaneously; return results."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def runner(index: int) -> None:
        barrier.wait()
        try:
            results[index] = target(index)
        except Exception as exc:  # pragma: no cover - fail loudly below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(i,)) for i in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


class TestBreakerRaces:
    def test_concurrent_failures_share_one_breaker(self):
        """32 first-failures racing must mint exactly one breaker."""
        endpoint = FailingEndpoint()
        engine = _engine(
            {"x://fail": endpoint},
            policy=ExecutionPolicy.defaults().replace(
                attempts=1, breaker_failure_threshold=1000
            ),
        )

        def fetch(i):
            return engine.execute("x://fail", ProviderRequest(
                context=RequestContext(user_id=f"u-{i}")
            ))

        outcomes = _hammer(32, fetch)
        assert all(o.status is FetchStatus.ERROR for o in outcomes)
        # Internal: the get-then-create in _breaker_for used to mint one
        # breaker per racing thread, each losing the others' trip state.
        assert len(engine._breakers) == 1
        breaker = engine._breakers["x://fail"]
        assert breaker.consecutive_failures == 32

    def test_policy_swap_discards_in_flight_breaker_records(self):
        """A fetch finishing after a policy swap must not resurrect its
        retired breaker (or mint a fresh one carrying stale counts)."""
        release = threading.Event()
        entered = threading.Event()

        def slow_fail(request):
            entered.set()
            release.wait(timeout=5)
            raise ProviderError("x://slow", "boom")

        engine = _engine(
            {"x://slow": slow_fail},
            policy=ExecutionPolicy.defaults().replace(
                attempts=1, breaker_failure_threshold=1
            ),
        )
        worker = threading.Thread(
            target=lambda: engine.execute("x://slow", ProviderRequest())
        )
        worker.start()
        assert entered.wait(timeout=5)
        # Swap mid-flight: retires every breaker.
        engine.policy = engine.policy.replace(breaker_failure_threshold=5)
        release.set()
        worker.join(timeout=5)
        assert not worker.is_alive()
        # The stale record was dropped: no breaker exists (the failure
        # would have tripped threshold=1 had it been double-counted).
        assert "x://slow" not in engine._breakers
        assert engine.breaker_state("x://slow") is BreakerState.CLOSED

    def test_breaker_never_regresses_open_to_closed_without_probe(self):
        """Under concurrent failures + timed probes, every observed
        open → closed transition passes through half-open."""
        endpoint = FailingEndpoint()
        engine = _engine(
            {"x://fail": endpoint},
            policy=ExecutionPolicy.defaults().replace(
                attempts=1,
                breaker_failure_threshold=2,
                breaker_reset_timeout_s=0.02,
                cache_ttl_s=0,
            ),
        )
        transitions: list[str] = []
        seen_lock = threading.Lock()
        original = engine.stats.record_breaker_state

        def spy(uri: str, state: str) -> None:
            with seen_lock:
                transitions.append(state)
            original(uri, state)

        engine.stats.record_breaker_state = spy

        def fetch(i):
            import time

            for _ in range(10):
                engine.execute("x://fail", ProviderRequest())
                time.sleep(0.005)

        _hammer(8, fetch)
        assert "open" in transitions  # the breaker did trip
        for prev, state in zip(transitions, transitions[1:]):
            if prev == "open":
                assert state != "closed", transitions


class TestScopeTravel:
    def test_scope_memo_reaches_execute_many_workers(self):
        """A scope entered on the caller thread must dedupe fetches run
        by pool workers — cache off, so only the memo can explain one call."""
        endpoint = CountingEndpoint()
        other = CountingEndpoint(ids=("b-1",))
        engine = _engine(
            {"x://count": endpoint, "x://other": other},
            policy=ExecutionPolicy.defaults().replace(
                cache_ttl_s=0, max_workers=4
            ),
        )
        request = ProviderRequest()
        with engine.scope():
            engine.execute("x://count", request)
            assert endpoint.calls == 1
            # Two distinct keys force the parallel path; the repeat of
            # x://count must be answered from the travelling scope memo.
            outcomes = engine.execute_many(
                [("x://count", request), ("x://other", request)]
            )
        assert [o.status for o in outcomes] == [FetchStatus.OK] * 2
        assert endpoint.calls == 1
        assert other.calls == 1
        engine.close()

    def test_scope_memo_serves_parallel_query_branches(self):
        """Concurrent branches of one scoped operation share results even
        when both start before either finishes."""
        endpoint = CountingEndpoint(latency_s=0.01)
        engine = _engine(
            {"x://count": endpoint},
            policy=ExecutionPolicy.defaults().replace(
                cache_ttl_s=0, max_workers=4
            ),
        )
        request = ProviderRequest()
        with engine.scope():
            outcomes = engine.execute_many(
                [("x://count", request)] * 4
                + [("x://count", ProviderRequest(
                    context=RequestContext(user_id="u-2")))]
            )
        assert all(o.status is FetchStatus.OK for o in outcomes)
        # 4 identical keys collapse to one invocation (batch dedup +
        # memo), the distinct-context key pays its own.
        assert endpoint.calls == 2
        engine.close()


class TestExecutorPool:
    def test_lazy_pool_construction_is_raced_safely(self):
        """First-callers racing _executor() must all get one pool."""
        engine = _engine(
            {"x://count": CountingEndpoint()},
            policy=ExecutionPolicy.defaults().replace(max_workers=4),
        )
        pools = _hammer(16, lambda i: engine._executor())
        assert len({id(p) for p in pools}) == 1
        engine.close()

    def test_policy_swap_resizes_stale_pool(self):
        engine = _engine(
            {"x://count": CountingEndpoint()},
            policy=ExecutionPolicy.defaults().replace(max_workers=2),
        )
        first = engine._executor()
        assert first._max_workers == 2
        engine.policy = engine.policy.replace(max_workers=6)
        second = engine._executor()
        assert second is not first
        assert second._max_workers == 6
        # The retired pool was shut down, not leaked.
        assert first._shutdown
        engine.close()

    def test_policy_swap_same_width_keeps_pool(self):
        engine = _engine(
            {"x://count": CountingEndpoint()},
            policy=ExecutionPolicy.defaults().replace(max_workers=3),
        )
        first = engine._executor()
        engine.policy = engine.policy.replace(attempts=4)
        assert engine._executor() is first
        engine.close()


class TestSingleFlight:
    def test_identical_in_flight_fetches_share_one_invocation(self):
        endpoint = CountingEndpoint(latency_s=0.03)
        engine = _engine(
            {"x://count": endpoint},
            policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0),
        )
        request = ProviderRequest(context=RequestContext(user_id="u-hot"))
        outcomes = _hammer(
            12, lambda i: engine.execute("x://count", request)
        )
        assert all(o.status is FetchStatus.OK for o in outcomes)
        assert all(
            o.result.items == outcomes[0].result.items
            for o in outcomes
        )
        assert endpoint.calls == 1
        assert engine.stats.single_flights == 11

    def test_distinct_keys_do_not_coalesce(self):
        endpoint = CountingEndpoint(latency_s=0.01)
        engine = _engine(
            {"x://count": endpoint},
            policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0),
        )
        _hammer(
            6,
            lambda i: engine.execute(
                "x://count",
                ProviderRequest(context=RequestContext(user_id=f"u-{i}")),
            ),
        )
        assert endpoint.calls == 6
        assert engine.stats.single_flights == 0

    def test_single_flight_disabled_calls_per_fetch(self):
        endpoint = CountingEndpoint(latency_s=0.03)
        engine = _engine(
            {"x://count": endpoint},
            policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0),
            single_flight=False,
        )
        request = ProviderRequest()
        _hammer(8, lambda i: engine.execute("x://count", request))
        assert endpoint.calls == 8
        assert engine.stats.single_flights == 0

    def test_waiters_get_errors_not_hangs_when_leader_fails(self):
        endpoint = FailingEndpoint()
        engine = _engine(
            {"x://fail": endpoint},
            policy=ExecutionPolicy.defaults().replace(
                attempts=1, breaker_failure_threshold=1000, cache_ttl_s=0
            ),
        )
        request = ProviderRequest()
        outcomes = _hammer(8, lambda i: engine.execute("x://fail", request))
        assert all(o.status is FetchStatus.ERROR for o in outcomes)


def _seeded_store(n: int = 12) -> CatalogStore:
    store = CatalogStore()
    store.add_user(User(id="u-1", name="Stress User"))
    for i in range(n):
        store.add_artifact(Artifact(
            id=f"a-{i}", name=f"ART_{i}",
            artifact_type="table" if i % 2 == 0 else "dashboard",
            owner_id="u-1", tags=("stress",),
        ))
    return store


class TestEngineStress:
    def test_fetch_invalidate_policy_swap_free_for_all(self):
        """8 threads × mixed ops on one engine; afterwards the books
        balance and a quiescent fetch returns current store truth."""
        store = _seeded_store()

        def live_tables(request):
            return list_result(
                [ScoredArtifact(aid) for aid in store.by_type("table")]
            )

        registry = EndpointRegistry()
        registry.register("x://tables", live_tables)
        engine = ExecutionEngine(
            registry,
            store=store,
            policy=ExecutionPolicy.defaults().replace(max_workers=4),
        )
        stop = threading.Event()
        next_id = [100]
        id_lock = threading.Lock()

        def worker(index: int) -> int:
            fetched = 0
            for round_ in range(40):
                action = (index + round_) % 8
                if action < 5:
                    outcome = engine.execute(
                        "x://tables",
                        ProviderRequest(
                            context=RequestContext(user_id=f"u-{index % 3}")
                        ),
                    )
                    assert outcome.status in (
                        FetchStatus.OK, FetchStatus.STALE
                    )
                    fetched += 1
                elif action == 5:
                    with id_lock:
                        new_id = next_id[0]
                        next_id[0] += 1
                    store.add_artifact(Artifact(
                        id=f"a-{new_id}", name=f"ART_{new_id}",
                        artifact_type="table", owner_id="u-1",
                    ))
                elif action == 6:
                    engine.invalidate()
                else:
                    engine.policy = engine.policy.replace(
                        attempts=1 + (round_ % 2)
                    )
            return fetched

        fetch_counts = _hammer(8, worker)
        stop.set()
        # Books balance: every fetch was answered by a hit, a miss (one
        # invocation each, attempts=1..2 but no failures so no retries),
        # or a single-flight join.
        totals = engine.stats.snapshot()["totals"]
        assert totals["errors"] == 0
        assert (
            totals["cache_hits"]
            + totals["cache_misses"]
            + totals["single_flights"]
            == sum(fetch_counts)
        )
        assert totals["cache_misses"] == totals["calls"]
        # Quiescent read returns the live truth — no stale entry survived
        # the concurrent invalidation storm.
        outcome = engine.execute("x://tables", ProviderRequest())
        assert outcome.status is FetchStatus.OK
        assert [a.artifact_id for a in outcome.result.items] == \
            store.by_type("table")
        engine.close()

    def test_tenant_policies_are_isolated_under_contention(self):
        """Tenant overlays set/cleared concurrently never affect other
        tenants' resolved policies."""
        endpoint = CountingEndpoint()
        engine = _engine(
            {"x://count": endpoint},
            policy=ExecutionPolicy.defaults().replace(attempts=1),
        )
        overlay = ExecutionPolicy.defaults().replace(attempts=7)

        def worker(index: int) -> None:
            tenant = f"t-{index % 4}"
            for _ in range(50):
                if index % 2 == 0:
                    engine.set_tenant_policy(tenant, overlay)
                    assert engine.tenant_policy(tenant).attempts == 7
                    engine.clear_tenant_policy(tenant)
                else:
                    # Readers: a foreign tenant's churn never leaks in.
                    assert engine.tenant_policy("t-stable").attempts == 1
                    engine.execute("x://count", ProviderRequest(
                        context=RequestContext(team_id="t-stable")
                    ))

        _hammer(8, worker)
        assert engine.tenant_policy("t-stable").attempts == 1


class TestSqliteConcurrentReaders:
    def test_parallel_readers_while_writing(self, tmp_path):
        """Reader threads on per-thread connections observe consistent
        snapshots while the writer mutates; nobody crashes or blocks."""
        store = CatalogStore.open(tmp_path / "cat.db")
        store.add_user(User(id="u-1", name="Writer"))
        for i in range(10):
            store.add_artifact(Artifact(
                id=f"a-{i}", name=f"T_{i}", artifact_type="table",
                owner_id="u-1",
            ))
        store.flush()
        stop = threading.Event()
        errors: list[Exception] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    ids = store.artifact_ids()
                    assert len(ids) >= 10
                    assert store.by_type("table")
                    store.usage_stats("a-0")
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for i in range(10, 40):
                store.add_artifact(Artifact(
                    id=f"a-{i}", name=f"T_{i}", artifact_type="table",
                    owner_id="u-1",
                ))
                store.record(f"a-{i % 10}", "u-1", "view")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors, errors
        assert len(store.artifact_ids()) == 40
        store.close()

    def test_read_connections_close_with_store(self, tmp_path):
        """close() from the main thread tears down read connections that
        were created on (now finished) pool threads — sqlite refuses
        cross-thread closes unless the backend opened them for it."""
        store = CatalogStore.open(tmp_path / "cat.db")
        store.add_user(User(id="u-1", name="U"))
        store.add_artifact(Artifact(id="a-1", name="T",
                                    artifact_type="table", owner_id="u-1"))
        store.flush()

        with ThreadPoolExecutor(max_workers=3) as pool:
            for ids in pool.map(
                lambda _: store.artifact_ids(), range(6)
            ):
                assert ids == ["a-1"]
        backend = store._backend
        assert backend._read_conns  # pool threads did open read conns
        store.close()  # must not raise despite foreign-thread conns
        assert not backend._read_conns


# -- hypothesis: sqlite interleavings with concurrent readers -----------------

_write_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 9)),
        st.tuples(st.just("view"), st.integers(0, 9)),
        st.tuples(st.just("badge"), st.integers(0, 9)),
    ),
    min_size=1,
    max_size=20,
)


class TestSqliteInterleavingProperty:
    @given(ops=_write_ops)
    @settings(max_examples=10, deadline=None)
    def test_concurrent_reads_match_serial_model(self, ops, tmp_path_factory):
        """Any write interleaving, raced by reader threads, leaves the
        sqlite store observing exactly what an in-memory model observes."""
        tmp_path = tmp_path_factory.mktemp("conc")
        sqlite_store = CatalogStore.open(tmp_path / "cat.db")
        model = CatalogStore()
        for store in (sqlite_store, model):
            store.add_user(User(id="u-1", name="U"))
        stop = threading.Event()
        reader_errors: list[Exception] = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    sqlite_store.artifact_ids()
                    sqlite_store.by_badge("endorsed")
            except Exception as exc:  # pragma: no cover
                reader_errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for op in ops:
                kind, n = op
                aid = f"a-{n}"
                if kind == "add":
                    if not sqlite_store.has_artifact(aid):
                        for store in (sqlite_store, model):
                            store.add_artifact(Artifact(
                                id=aid, name=f"T_{n}",
                                artifact_type="table", owner_id="u-1",
                            ))
                elif sqlite_store.has_artifact(aid):
                    for store in (sqlite_store, model):
                        if kind == "view":
                            store.record(aid, "u-1", "view")
                        else:
                            store.grant_badge(aid, "endorsed", "u-1")
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not reader_errors, reader_errors
        assert sqlite_store.artifact_ids() == model.artifact_ids()
        assert sqlite_store.by_badge("endorsed") == model.by_badge("endorsed")
        for aid in model.artifact_ids():
            assert (sqlite_store.usage_stats(aid).view_count
                    == model.usage_stats(aid).view_count)
        sqlite_store.close()


class TestStreamingWritersUnderLoad:
    def test_readers_stay_fresh_with_competing_write_streams(self):
        """Writer threads push usage bursts through one shared coalescing
        EventStream and append lineage edges while reader threads fetch
        usage-dependent endpoints through a patch-enabled engine.  No
        thread errors, the books balance, and after quiescing (final
        flush) every engine answer matches a fresh provider fetch."""
        from repro.providers.builtin import (
            BuiltinProviders,
            install_builtin_endpoints,
        )

        store = _seeded_store(n=10)
        for uid in ("u-2", "u-3"):
            store.add_user(User(id=uid, name=f"Writer {uid}"))
        registry = EndpointRegistry()
        install_builtin_endpoints(registry, BuiltinProviders(store))
        engine = ExecutionEngine(
            registry,
            store=store,
            policy=ExecutionPolicy.defaults().replace(cache_ttl_s=3600.0),
        )
        stream = store.stream(window_s=0.0, max_batch=8)
        requests = [
            ProviderRequest(
                inputs={"user": uid}, context=RequestContext(user_id=uid)
            )
            for uid in ("u-1", "u-2", "u-3")
        ]
        edge_seq = [0]
        edge_lock = threading.Lock()

        def worker(index: int) -> int:
            fetched = 0
            uid = f"u-{index % 3 + 1}"
            for round_ in range(60):
                if index % 2 == 0:
                    # Writer: usage burst + the occasional lineage edge.
                    stream.record(f"a-{round_ % 10}", uid, "view")
                    if round_ % 10 == 9:
                        with edge_lock:
                            n = edge_seq[0]
                            edge_seq[0] += 1
                        store.lineage.add_edge(
                            f"a-{n % 10}", f"sink-{n}", "derives"
                        )
                else:
                    outcome = engine.execute(
                        "catalog://recents" if round_ % 2 == 0
                        else "catalog://most_viewed",
                        requests[index % 3],
                    )
                    assert outcome.status in (
                        FetchStatus.OK, FetchStatus.STALE
                    )
                    fetched += 1
            return fetched

        fetch_counts = _hammer(8, worker)
        stream.flush()
        totals = engine.stats.snapshot()["totals"]
        assert totals["errors"] == 0
        assert (
            totals["cache_hits"]
            + totals["cache_misses"]
            + totals["single_flights"]
            == sum(fetch_counts)
        )
        # Quiescent reads equal the live provider truth.
        for request in requests:
            for uri in ("catalog://recents", "catalog://most_viewed"):
                served = engine.execute(uri, request).result
                fresh = registry.resolve(uri)(request)
                assert served.artifact_ids() == fresh.artifact_ids(), uri
        engine.close()
