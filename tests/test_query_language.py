"""Tests for query compilation, evaluation, autocomplete and pills."""

import pytest

from repro.core.query.autocomplete import Autocompleter
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.query.parser import parse_query
from repro.core.query.pills import CallPill, FieldPill, PillQuery, TextPill
from repro.core.ranking import Ranker
from repro.errors import QueryCompileError
from repro.providers.base import RequestContext
from repro.providers.fields import FieldResolver
from repro.providers.suite import default_spec


@pytest.fixture
def language():
    return QueryLanguage(default_spec())


@pytest.fixture
def evaluator(tiny_store, tiny_registry, language):
    return QueryEvaluator(
        tiny_store, tiny_registry, language, Ranker(FieldResolver(tiny_store))
    )


@pytest.fixture
def completer(language, tiny_store):
    return Autocompleter(language, tiny_store)


class TestLanguage:
    def test_fields_generated_from_spec(self, language):
        fields = language.field_names()
        assert "owned_by" in fields
        assert "type" in fields  # search_field alias of of_type
        assert "of_type" not in fields
        assert "badges" not in fields  # search visibility off

    def test_compile_binds_providers(self, language):
        compiled = language.compile("type: table & owned_by: 'Alex'")
        assert compiled.providers_used() == ["of_type", "owned_by"]

    def test_compile_text_terms(self, language):
        compiled = language.compile("sales 'big numbers'")
        assert compiled.text_terms() == ["sales", "big numbers"]

    def test_unknown_field_suggests(self, language):
        with pytest.raises(QueryCompileError, match="did you mean"):
            language.compile("owned_byy: 'Alex'")

    def test_unknown_call_rejected(self, language):
        with pytest.raises(QueryCompileError):
            language.compile(":bogus_provider()")

    def test_call_missing_required_arg(self, language):
        with pytest.raises(QueryCompileError, match="requires a value"):
            language.compile(":owned_by()")

    def test_call_with_optional_inputs_ok(self, language):
        compiled = language.compile(":recent_documents()")
        assert compiled.providers_used() == ["recent_documents"]

    def test_compile_accepts_ast(self, language):
        node = parse_query("badged: endorsed")
        compiled = language.compile(node)
        assert compiled.node == node

    def test_callable_providers_listed(self, language):
        callables = language.callable_providers()
        assert "recents" in callables
        assert "recent_documents" in callables


class TestEvaluator:
    def ctx(self, user=""):
        return RequestContext(user_id=user)

    def test_field_term(self, evaluator):
        result = evaluator.search("badged: endorsed")
        assert set(result.artifact_ids()) == {"t-orders", "d-sales"}

    def test_text_term_conjunctive_tokens(self, evaluator):
        result = evaluator.search("'sales dashboard'")
        assert result.artifact_ids() == ["d-sales"]

    def test_and_intersects(self, evaluator):
        result = evaluator.search("type: table & badged: endorsed")
        assert result.artifact_ids() == ["t-orders"]

    def test_or_unions(self, evaluator):
        result = evaluator.search("badged: endorsed | badged: certified")
        assert set(result.artifact_ids()) == {
            "t-orders", "d-sales", "t-customers",
        }

    def test_not_subtracts_from_catalog(self, evaluator, tiny_store):
        result = evaluator.search("!type: table")
        assert set(result.artifact_ids()) == (
            set(tiny_store.artifact_ids())
            - {"t-orders", "t-customers", "t-web"}
        )

    def test_not_within_universe(self, evaluator):
        result = evaluator.search(
            "!badged: endorsed", universe=["t-orders", "t-web"]
        )
        assert result.artifact_ids() == ["t-web"]

    def test_universe_scopes_all_terms(self, evaluator):
        result = evaluator.search("type: table", universe=["t-web"])
        assert result.artifact_ids() == ["t-web"]

    def test_provider_call(self, evaluator):
        result = evaluator.search(
            ":recents()", context=self.ctx(user="u-dee")
        )
        assert set(result.artifact_ids()) == {"w-q1", "d-sales"}

    def test_paper_flagship_shape(self, evaluator):
        result = evaluator.search(
            "type: table owned by: 'Ann Lee' badged: endorsed "
            "badged by: 'Bob Ray' & 'orders'"
        )
        assert result.artifact_ids() == ["t-orders"]

    def test_empty_result(self, evaluator):
        assert evaluator.search("type: table & badged: certified "
                                "& web").is_empty()

    def test_ranking_applied_with_global_weights(self, evaluator):
        result = evaluator.search("type: table")
        # t-orders: favorite + most views must rank first under Listing 1.
        assert result.artifact_ids()[0] == "t-orders"

    def test_name_match_outranks_description_match(self, evaluator):
        # "orders": in the NAME of t-orders/v-orders; description of none.
        result = evaluator.search("orders")
        assert result.entries[0].artifact_id in ("t-orders", "v-orders")

    def test_limit_and_total(self, evaluator):
        result = evaluator.search("type: table", limit=2)
        assert len(result.entries) == 2
        assert result.total == 3

    def test_unknown_field_raises_at_search(self, evaluator):
        with pytest.raises(QueryCompileError):
            evaluator.search("bogus_field: x")


class TestAutocomplete:
    def test_empty_input_suggests_fields(self, completer):
        suggestions = completer.suggest("")
        assert all(s.kind == "field" for s in suggestions)

    def test_field_prefix(self, completer):
        texts = [s.text for s in completer.suggest("own")]
        assert texts == ["owned_by: "]

    def test_value_position_user(self, completer):
        texts = [s.text for s in completer.suggest("owned_by: ")]
        assert '"Ann Lee"' in texts

    def test_value_position_with_prefix(self, completer):
        texts = [s.text for s in completer.suggest("owned_by: An")]
        assert texts == ['"Ann Lee"']

    def test_value_position_badge(self, completer):
        texts = [s.text for s in completer.suggest("badged: ")]
        assert texts == ["certified", "endorsed"]

    def test_value_position_type(self, completer):
        texts = [s.text for s in completer.suggest("type: ")]
        assert "table" in texts
        assert "workbook" in texts

    def test_spaced_field_value_position(self, completer):
        texts = [s.text for s in completer.suggest("badged by: ")]
        assert '"Bob Ray"' in texts

    def test_provider_call_position(self, completer):
        texts = [s.text for s in completer.suggest(":rec")]
        assert ":recent_documents()" in texts
        assert ":recents()" in texts

    def test_after_complete_term_offers_operators(self, completer):
        suggestions = completer.suggest("type: table ")
        kinds = {s.kind for s in suggestions}
        assert "operator" in kinds

    def test_unterminated_quote_no_suggestions(self, completer):
        assert completer.suggest("owned_by: 'An") == []

    def test_limit(self, completer):
        assert len(completer.suggest("", limit=3)) == 3

    def test_suggestions_carry_descriptions(self, completer):
        suggestion = next(s for s in completer.suggest("own"))
        assert "owned" in suggestion.detail.lower() or suggestion.detail


class TestPills:
    def test_field_pills_and_text(self, language):
        pills = PillQuery().field("type", "table").text("sales")
        node = pills.to_node()
        assert node == parse_query("type: table & sales")

    def test_or_connector_groups(self):
        pills = (
            PillQuery()
            .field("badged", "endorsed")
            .field("badged", "certified", connector="or")
        )
        assert pills.to_node() == parse_query(
            "badged: endorsed | badged: certified"
        )

    def test_negated_pill(self):
        pills = PillQuery().field("type", "table").text("hr", negated=True)
        assert pills.to_node() == parse_query("type: table & !hr")

    def test_call_pill(self):
        pills = PillQuery().call("recents")
        assert pills.to_node() == parse_query(":recents()")

    def test_labels(self):
        pills = (
            PillQuery()
            .field("type", "table")
            .text("sales", connector="or", negated=True)
        )
        assert pills.labels() == ["type: table", "or not sales"]

    def test_remove_pill(self):
        pills = PillQuery().text("a").text("b")
        pills.remove(0)
        assert pills.to_node() == parse_query("b")

    def test_empty_pill_query_raises(self):
        with pytest.raises(ValueError):
            PillQuery().to_node()

    def test_invalid_connector(self):
        with pytest.raises(ValueError):
            PillQuery().text("a", connector="xor")

    def test_round_trip_through_text(self, language):
        pills = (
            PillQuery()
            .field("type", "workbook")
            .field("owned_by", "John Doe")
            .text("sales", connector="or")
        )
        text = pills.to_text()
        assert parse_query(text) == pills.to_node()

    def test_pill_objects(self):
        assert TextPill("x").label() == "x"
        assert FieldPill("a", "b").label() == "a: b"
        assert CallPill("r", "x").label() == ":r(x)"

    def test_len(self):
        assert len(PillQuery().text("a").text("b")) == 2
