"""Tests for the workbook host app and sessions."""

import pytest

from repro.errors import ConfigurationError, UnknownEntityError
from repro.workbook.app import WorkbookApp
from repro.workbook.events import EventLog, UiEvent


class TestEventLog:
    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            UiEvent(kind="teleported")

    def test_record_and_query(self):
        log = EventLog()
        log.record("search", detail="q1")
        log.record("tab_selected", detail="recents")
        log.record("search", detail="q2")
        assert len(log) == 3
        assert log.count("search") == 2
        assert [e.detail for e in log.of_kind("search")] == ["q1", "q2"]

    def test_first_of(self):
        log = EventLog()
        log.record("tab_selected", detail="a")
        log.record("search", detail="q")
        assert log.first_of("search", "tab_selected").kind == "tab_selected"
        assert log.first_of("assist") is None

    def test_clear(self):
        log = EventLog()
        log.record("search")
        log.clear()
        assert len(log) == 0


class TestApp:
    def test_session_validates_user(self, tiny_app):
        with pytest.raises(UnknownEntityError):
            tiny_app.session("ghost")

    def test_session_resolves_team(self, tiny_app):
        session = tiny_app.session("u-dee")
        assert session.team_id == "t-2"

    def test_update_spec_regenerates(self, tiny_app):
        smaller = tiny_app.spec.without_provider("recents")
        tiny_app.update_spec(smaller)
        session = tiny_app.session("u-ann")
        assert "recents" not in [t.provider_name for t in session.open_home()]


class TestSessionNavigation:
    def test_open_home_records_event(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.open_home()
        assert session.events.count("home_opened") == 1

    def test_select_tab_by_title_and_index(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.open_home()
        by_title = session.select_tab("Most Viewed")
        assert by_title.provider_name == "most_viewed"
        by_index = session.select_tab(0)
        assert session.active_view() is by_index.view

    def test_select_tab_errors(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.open_home()
        with pytest.raises(KeyError):
            session.select_tab("No Such Tab")
        with pytest.raises(IndexError):
            session.select_tab(99)

    def test_active_view_none_before_home(self, tiny_app):
        assert tiny_app.session("u-ann").active_view() is None


class TestSessionSearch:
    def test_search_appends_tab(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.open_home()
        n_tabs = len(session.tabs())
        result = session.search("badged: endorsed")
        assert len(session.tabs()) == n_tabs + 1
        assert session.tabs()[-1].provider_name == "search"
        assert session.last_search() is result

    def test_filter_active_view_replaces_tab(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.open_home()
        session.select_tab("Most Viewed")
        before = session.active_view().count()
        filtered = session.filter_active_view("type: table")
        assert session.active_view().count() == filtered.count()
        assert filtered.count() <= before

    def test_filter_without_view_raises(self, tiny_app):
        with pytest.raises(ConfigurationError):
            tiny_app.session("u-ann").filter_active_view("x")

    def test_suggest_records_event(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.suggest("ow")
        assert session.events.count("suggestions_shown") == 1


class TestSessionSelection:
    def test_select_artifact_and_preview(self, tiny_app):
        session = tiny_app.session("u-ann")
        preview = session.select_artifact("t-orders")
        assert preview.name == "ORDERS"
        assert session.selection == "t-orders"
        assert session.events.count("preview_shown") == 1

    def test_select_unknown_artifact(self, tiny_app):
        with pytest.raises(UnknownEntityError):
            tiny_app.session("u-ann").select_artifact("ghost")

    def test_explore_requires_selection(self, tiny_app):
        with pytest.raises(ConfigurationError):
            tiny_app.session("u-ann").explore_selection()

    def test_explore_selection(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.select_artifact("t-orders")
        surfaced = session.explore_selection()
        assert surfaced
        assert session.events.count("exploration_shown") == 1


class TestSessionRolesAndConfig:
    def test_config_requires_admin_role(self, tiny_app):
        session = tiny_app.session("u-ann")
        with pytest.raises(ConfigurationError, match="team_admin"):
            session.open_team_config()

    def test_switch_role_validates(self, tiny_app):
        session = tiny_app.session("u-ann")
        with pytest.raises(ConfigurationError):
            session.switch_role("superuser")

    def test_admin_configures_home_page(self, tiny_app):
        session = tiny_app.session("u-ann")  # admin of t-1
        session.switch_role("team_admin")
        session.open_team_config()
        session.configure_team_home_page(["recents", "badges"])
        page = tiny_app.home_pages.home_page("t-1", user_id="u-ann")
        assert page.provider_names() == ["recents", "badges"]
        assert session.events.count("home_page_configured") == 1

    def test_configured_home_used_on_open(self, tiny_app):
        admin = tiny_app.session("u-ann")
        admin.switch_role("team_admin")
        admin.configure_team_home_page(["badges"])
        fresh = tiny_app.session("u-bob", team_id="t-1")
        tabs = fresh.open_home()
        assert [t.provider_name for t in tabs] == ["badges"]
        assert len(fresh.open_browse()) > 1  # full strip still reachable

    def test_non_admin_cannot_configure_other_team(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.switch_role("team_admin")
        with pytest.raises(ConfigurationError, match="not an admin"):
            session.configure_team_home_page(["recents"], team_id="t-2")

    def test_user_hide_and_reorder(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.hide_provider("newest")
        session.reorder_providers(["most_viewed"])
        tabs = session.open_browse()
        names = [t.provider_name for t in tabs]
        assert "newest" not in names
        assert names[0] == "most_viewed"
