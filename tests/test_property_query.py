"""Property-based tests for the query language.

Invariants: generated ASTs render to text that reparses to the same AST;
the lexer never loses or invents tokens for word inputs; evaluation obeys
set-algebra laws on the tiny catalog.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query.ast import (
    And,
    FieldTerm,
    Not,
    Or,
    ProviderCall,
    QueryNode,
    TextTerm,
)
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.query.lexer import tokenize_query
from repro.core.query.parser import parse_query
from repro.core.ranking import Ranker
from repro.providers.fields import FieldResolver
from repro.providers.suite import default_spec
from tests.conftest import build_tiny_store

# -- AST generation strategies ----------------------------------------------

words = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_",
    min_size=1,
    max_size=8,
).filter(lambda w: w not in ("and", "or", "not") and not w[0].isdigit())

quoted_values = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz ABC'\"",
    min_size=1,
    max_size=12,
).map(str.strip).filter(bool)


def leaf_nodes():
    return st.one_of(
        words.map(TextTerm),
        quoted_values.map(TextTerm),
        st.tuples(words, st.one_of(words, quoted_values)).map(
            lambda fv: FieldTerm(field=fv[0], value=fv[1])
        ),
        words.map(lambda name: ProviderCall(name=name)),
        st.tuples(words, words).map(
            lambda na: ProviderCall(name=na[0], argument=na[1])
        ),
    )


def query_nodes(max_depth=3):
    return st.recursive(
        leaf_nodes(),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=4).map(
                lambda cs: And(children=tuple(cs))
            ),
            st.lists(children, min_size=2, max_size=4).map(
                lambda cs: Or(children=tuple(cs))
            ),
            children.map(lambda c: Not(child=c)),
        ),
        max_leaves=8,
    )


class TestRoundTripProperty:
    @given(node=query_nodes())
    @settings(max_examples=200, deadline=None)
    def test_to_text_reparses_to_same_ast(self, node: QueryNode):
        text = node.to_text()
        reparsed = parse_query(text)
        assert _normalize(reparsed) == _normalize(node)

    @given(node=query_nodes())
    @settings(max_examples=100, deadline=None)
    def test_rendered_text_lexes(self, node: QueryNode):
        tokens = tokenize_query(node.to_text())
        assert tokens[-1].kind == "EOF"


def _normalize(node: QueryNode) -> QueryNode:
    """Collapse nested And/Or so flattening differences don't fail equality."""
    if isinstance(node, And):
        flat = []
        for child in (_normalize(c) for c in node.children):
            if isinstance(child, And):
                flat.extend(child.children)
            else:
                flat.append(child)
        return And(tuple(flat))
    if isinstance(node, Or):
        flat = []
        for child in (_normalize(c) for c in node.children):
            if isinstance(child, Or):
                flat.extend(child.children)
            else:
                flat.append(child)
        return Or(tuple(flat))
    if isinstance(node, Not):
        return Not(_normalize(node.child))
    return node


# -- evaluation laws ----------------------------------------------------------

_STORE = build_tiny_store()


@pytest.fixture(scope="module")
def evaluator():
    from repro.providers.builtin import (
        BuiltinProviders,
        install_builtin_endpoints,
    )
    from repro.providers.registry import EndpointRegistry

    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(_STORE))
    language = QueryLanguage(default_spec())
    return QueryEvaluator(_STORE, registry, language,
                          Ranker(FieldResolver(_STORE)))


simple_terms = st.sampled_from([
    "type: table",
    "type: workbook",
    "badged: endorsed",
    "badged: certified",
    "tagged: sales",
    "tagged: crm",
    "orders",
    "dashboard",
    "zebra_nothing_matches",
])


class TestEvaluationLaws:
    @given(a=simple_terms, b=simple_terms)
    @settings(max_examples=40, deadline=None)
    def test_and_commutes_as_sets(self, evaluator, a, b):
        left = set(evaluator.search(f"{a} & {b}", limit=100).artifact_ids())
        right = set(evaluator.search(f"{b} & {a}", limit=100).artifact_ids())
        assert left == right

    @given(a=simple_terms, b=simple_terms)
    @settings(max_examples=40, deadline=None)
    def test_or_is_union(self, evaluator, a, b):
        union = set(evaluator.search(f"{a} | {b}", limit=100).artifact_ids())
        only_a = set(evaluator.search(a, limit=100).artifact_ids())
        only_b = set(evaluator.search(b, limit=100).artifact_ids())
        assert union == only_a | only_b

    @given(a=simple_terms, b=simple_terms)
    @settings(max_examples=40, deadline=None)
    def test_and_is_intersection(self, evaluator, a, b):
        both = set(evaluator.search(f"{a} & {b}", limit=100).artifact_ids())
        only_a = set(evaluator.search(a, limit=100).artifact_ids())
        only_b = set(evaluator.search(b, limit=100).artifact_ids())
        assert both == only_a & only_b

    @given(a=simple_terms)
    @settings(max_examples=20, deadline=None)
    def test_double_negation_is_identity(self, evaluator, a):
        positive = set(evaluator.search(a, limit=100).artifact_ids())
        double_negative = set(
            evaluator.search(f"!!{a}", limit=100).artifact_ids()
        )
        assert positive == double_negative

    @given(a=simple_terms)
    @settings(max_examples=20, deadline=None)
    def test_excluded_middle(self, evaluator, a):
        matches = set(evaluator.search(a, limit=100).artifact_ids())
        complement = set(evaluator.search(f"!{a}", limit=100).artifact_ids())
        assert matches & complement == set()
        assert matches | complement == set(_STORE.artifact_ids())

    @given(a=simple_terms)
    @settings(max_examples=20, deadline=None)
    def test_idempotence(self, evaluator, a):
        once = set(evaluator.search(a, limit=100).artifact_ids())
        doubled = set(evaluator.search(f"{a} & {a}", limit=100).artifact_ids())
        assert once == doubled
