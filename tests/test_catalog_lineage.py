"""Unit tests for the lineage graph."""

import pytest

from repro.catalog.lineage import LineageEdge, LineageGraph
from repro.errors import CatalogError


@pytest.fixture
def chain():
    """t1 -> v1 -> d1, t2 -> d1."""
    graph = LineageGraph()
    graph.add_edge("t1", "v1", "derives")
    graph.add_edge("v1", "d1", "embeds")
    graph.add_edge("t2", "d1", "derives")
    return graph


class TestEdges:
    def test_edge_kind_validation(self):
        with pytest.raises(ValueError, match="unknown lineage kind"):
            LineageEdge("a", "b", "copies")

    def test_self_loop_rejected(self):
        graph = LineageGraph()
        with pytest.raises(CatalogError, match="self-lineage"):
            graph.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self, chain):
        with pytest.raises(CatalogError, match="cycle"):
            chain.add_edge("d1", "t1")
        # the offending edge must not remain
        assert chain.edge_count == 3

    def test_contains(self, chain):
        assert "t1" in chain
        assert "zzz" not in chain


class TestTraversal:
    def test_downstream_full(self, chain):
        assert chain.downstream("t1") == ["d1", "v1"]

    def test_downstream_depth_limited(self, chain):
        assert chain.downstream("t1", depth=1) == ["v1"]

    def test_upstream(self, chain):
        assert chain.upstream("d1") == ["t1", "t2", "v1"]
        assert chain.upstream("d1", depth=1) == ["t2", "v1"]

    def test_unknown_node_empty(self, chain):
        assert chain.downstream("zzz") == []
        assert chain.upstream("zzz") == []

    def test_children_and_parents(self, chain):
        assert chain.children("t1") == ["v1"]
        assert chain.parents("d1") == ["t2", "v1"]
        assert chain.children("zzz") == []

    def test_roots(self, chain):
        assert chain.roots() == ["t1", "t2"]

    def test_edges_sorted_with_kinds(self, chain):
        edges = chain.edges()
        assert [(e.src, e.dst) for e in edges] == [
            ("t1", "v1"), ("t2", "d1"), ("v1", "d1"),
        ]
        assert edges[0].kind == "derives"
        assert edges[2].kind == "embeds"


class TestSubgraph:
    def test_around_middle_node(self, chain):
        nodes, edges = chain.subgraph_around("v1", depth=1)
        assert nodes == ["d1", "t1", "v1"]
        assert {(e.src, e.dst) for e in edges} == {
            ("t1", "v1"), ("v1", "d1"),
        }

    def test_around_unknown_node(self, chain):
        nodes, edges = chain.subgraph_around("zzz")
        assert nodes == ["zzz"]
        assert edges == []

    def test_depth_two_covers_descendants_only(self, chain):
        # t2 is an in-law (upstream of a descendant), not reachable from
        # t1 in either direction, so it stays out.
        nodes, edges = chain.subgraph_around("t1", depth=2)
        assert nodes == ["d1", "t1", "v1"]
        assert {(e.src, e.dst) for e in edges} == {
            ("t1", "v1"), ("v1", "d1"),
        }
