"""Run every example script in-process and assert its key output.

Examples are documentation that executes; this module keeps them honest.
Each runs via runpy with stdout captured, so a broken example fails the
test suite rather than a reader's first five minutes.
"""

import contextlib
import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

#: script -> substrings its output must contain
EXPECTATIONS = {
    "quickstart.py": [
        "SALES_NUMBERS",          # flagship query hit
        "AIRLINES",               # preview pane
        "Recents",                # tab strip
        "suggest(",               # autocomplete demo
    ],
    "custom_provider.py": [
        "added trending",         # spec diff summary
        "Trending This Week",     # generated tab
        "tabs after removal:",    # clean removal
    ],
    "team_homepage.py": [
        "configuration panel",
        "A Team HQ",
        "'providers':",           # Listing 2 entry printed
    ],
    "search_tour.py": [
        "admissible query fields",
        "same AST as parsing that text: True",
        "after 'tagged: sales'",
    ],
    "nl_search.py": [
        "SALES_NUMBERS",          # motivating sentence resolves
        "reads as: artifacts",    # explain() direction
    ],
    "governance.py": [
        "Stale Data",
        "customer_id column",
        "unionable with",
    ],
    "curated_collections.py": [
        "Golden Datasets",
        "Certified & Popular",
        "saved search 'hot sales'",
    ],
}


def run_example(name: str, argv: list[str] | None = None) -> str:
    buffer = io.StringIO()
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        with contextlib.redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


@pytest.mark.parametrize("script", sorted(EXPECTATIONS))
def test_example_runs_and_prints_expected(script):
    output = run_example(script)
    for marker in EXPECTATIONS[script]:
        assert marker in output, f"{script}: missing {marker!r}"


def test_export_html_example(tmp_path):
    output = run_example("export_html.py", argv=[str(tmp_path)])
    assert "6 of 6 view types rendered" in output
    assert (tmp_path / "interface.html").exists()
    for representation in ("tiles", "list", "hierarchy", "graph",
                           "categories", "embedding"):
        assert (tmp_path / f"view_{representation}.html").exists()
