"""Tests for the TF-IDF index and cosine similarity."""

import pytest

from repro.metadata.text import TfIdfIndex, cosine


class TestCosine:
    def test_identical_vectors(self):
        v = {"a": 1.0, "b": 2.0}
        assert cosine(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine({"a": 1.0}, {"b": 1.0}) == 0.0

    def test_empty(self):
        assert cosine({}, {"a": 1.0}) == 0.0

    def test_symmetry(self):
        left = {"a": 1.0, "b": 3.0}
        right = {"b": 2.0, "c": 1.0}
        assert cosine(left, right) == pytest.approx(cosine(right, left))

    def test_scale_invariant(self):
        left = {"a": 1.0, "b": 2.0}
        scaled = {"a": 10.0, "b": 20.0}
        other = {"a": 3.0, "c": 1.0}
        assert cosine(left, other) == pytest.approx(cosine(scaled, other))


class TestTfIdfIndex:
    @pytest.fixture
    def index(self):
        idx = TfIdfIndex()
        idx.add("doc-sales", "sales orders revenue quarterly")
        idx.add("doc-crm", "customer accounts sales pipeline")
        idx.add("doc-logs", "web logs sessions errors latency")
        return idx

    def test_len_and_contains(self, index):
        assert len(index) == 3
        assert "doc-sales" in index
        assert "ghost" not in index

    def test_similar_prefers_shared_terms(self, index):
        hits = index.similar("doc-sales")
        assert hits[0][0] == "doc-crm"  # shares "sales"
        keys = [k for k, _ in hits]
        assert "doc-logs" not in keys  # no shared term

    def test_similar_excludes_self(self, index):
        keys = [k for k, _ in index.similar("doc-sales")]
        assert "doc-sales" not in keys

    def test_similar_unknown_doc(self, index):
        assert index.similar("ghost") == []

    def test_search_free_text(self, index):
        hits = index.search("sales revenue")
        assert hits[0][0] == "doc-sales"

    def test_search_no_match(self, index):
        assert index.search("xylophone") == []

    def test_search_empty_text(self, index):
        assert index.search("") == []

    def test_idf_rare_terms_weigh_more(self, index):
        assert index.idf("revenue") > index.idf("sales")

    def test_remove_updates_df(self, index):
        idf_before = index.idf("sales")
        index.remove("doc-crm")
        # "sales" now appears in 1 of 2 docs instead of 2 of 3: rarer,
        # so its idf rises.
        assert index.idf("sales") > idf_before
        assert "doc-crm" not in index

    def test_remove_missing_noop(self, index):
        index.remove("ghost")
        assert len(index) == 3

    def test_re_add_replaces(self, index):
        index.add("doc-sales", "completely different text")
        hits = index.search("revenue")
        assert all(k != "doc-sales" for k, _ in hits)

    def test_vector_for_indexed_doc(self, index):
        vector = index.vector("doc-sales")
        assert "sales" in vector
        assert all(weight > 0 for weight in vector.values())

    def test_vector_unknown_doc_empty(self, index):
        assert index.vector("ghost") == {}

    def test_scores_sorted_descending(self, index):
        index.add("doc-mix", "sales customer web")
        hits = index.search("sales customer")
        scores = [score for _, score in hits]
        assert scores == sorted(scores, reverse=True)

    def test_limit_respected(self, index):
        for i in range(20):
            index.add(f"extra-{i}", "sales data")
        assert len(index.search("sales", limit=5)) == 5
