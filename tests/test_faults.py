"""Failure-injection tests: broken providers degrade, never crash the UI."""

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ProviderError,
    RepresentationError,
)
from repro.providers.base import ProviderRequest, Representation
from repro.providers.faults import (
    FailNTimesEndpoint,
    FlakyEndpoint,
    LatencySpikeEndpoint,
    SlowEndpoint,
    WrongShapeEndpoint,
    is_transient,
)
from repro.util.clock import SimulationClock


@pytest.fixture
def flaky_app(tiny_app):
    """tiny_app with the most_viewed endpoint failing on every call."""
    original = tiny_app.registry.resolve("catalog://most_viewed")
    tiny_app.registry.register(
        "catalog://most_viewed",
        FlakyEndpoint(original, fail_on=lambda index: True,
                      name="most_viewed"),
        replace=True,
    )
    return tiny_app


class TestFlakyEndpoint:
    def test_fails_on_schedule(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        flaky = FlakyEndpoint(original, fail_on={2}, name="newest")
        request = ProviderRequest()
        flaky(request)  # call 1 succeeds
        with pytest.raises(ProviderError, match="simulated outage"):
            flaky(request)  # call 2 fails
        flaky(request)  # call 3 succeeds
        assert flaky.calls == 3

    def test_predicate_schedule(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        flaky = FlakyEndpoint(original, fail_on=lambda i: i % 2 == 0)
        request = ProviderRequest()
        flaky(request)
        with pytest.raises(ProviderError):
            flaky(request)


class TestSlowEndpoint:
    def test_budget_exhaustion(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        slow = SlowEndpoint(original, latency_ms=40, budget_ms=100)
        request = ProviderRequest()
        slow(request)
        slow(request)
        with pytest.raises(ProviderError, match="timeout"):
            slow(request)  # 120ms > 100ms budget
        assert slow.timed_out == 1
        assert slow.remaining_ms == pytest.approx(20.0)

    def test_negative_params_rejected(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        with pytest.raises(ValueError):
            SlowEndpoint(original, latency_ms=-1, budget_ms=10)


class TestInterfaceContainment:
    def test_overview_skips_broken_provider(self, flaky_app):
        session = flaky_app.session("u-ann")
        tabs = session.open_home()
        names = [t.provider_name for t in tabs]
        assert "most_viewed" not in names
        assert "recents" in names  # the rest of the UI is intact

    def test_failure_recorded_for_observability(self, flaky_app):
        flaky_app.session("u-ann").open_home()
        errors = dict(flaky_app.interface.last_errors)
        assert "most_viewed" in errors
        assert "simulated outage" in errors["most_viewed"]

    def test_errors_reset_between_generations(self, flaky_app):
        session = flaky_app.session("u-ann")
        session.open_home()
        # heal the endpoint
        from repro.providers.builtin import BuiltinProviders

        healthy = BuiltinProviders(flaky_app.store).most_viewed
        flaky_app.registry.register("catalog://most_viewed", healthy,
                                    replace=True)
        session.open_browse()
        assert flaky_app.interface.last_errors == []

    def test_open_view_still_raises_directly(self, flaky_app):
        """Explicitly opening the broken view surfaces the error — only
        bulk generation degrades silently."""
        with pytest.raises(ProviderError):
            flaky_app.interface.open_view("most_viewed", user_id="u-ann")

    def test_home_page_skips_broken_provider(self, flaky_app):
        manager = flaky_app.home_pages
        spec = manager.configure(
            "t-1", ["most_viewed", "recents"], acting_user="u-ann"
        )
        flaky_app.update_spec(spec)
        # re-break the endpoint (update_spec doesn't touch the registry,
        # but be explicit for readability)
        page = flaky_app.home_pages.home_page("t-1", user_id="u-ann")
        assert page.provider_names() == ["recents"]

    def test_exploration_skips_broken_provider(self, tiny_app):
        original = tiny_app.registry.resolve("catalog://similar")
        tiny_app.registry.register(
            "catalog://similar",
            FlakyEndpoint(original, fail_on=lambda i: True, name="similar"),
            replace=True,
        )
        session = tiny_app.session("u-ann")
        session.select_artifact("t-orders")
        surfaced = session.explore_selection()
        providers = {s.provider_name for s in surfaced}
        assert "similar" not in providers
        assert "joinable" in providers  # others unaffected


class TestContractEnforcement:
    def test_wrong_shape_rejected_at_boundary(self, tiny_app):
        tiny_app.registry.register(
            "catalog://embedding_map",
            WrongShapeEndpoint(["t-orders"]),
            replace=True,
        )
        with pytest.raises(RepresentationError, match="declares"):
            tiny_app.interface.open_view("embedding_map", user_id="u-ann")

    def test_search_propagates_provider_failure(self, flaky_app):
        """A query that *needs* the broken provider fails loudly —
        silent empty results would be worse than an error."""
        with pytest.raises(ProviderError):
            flaky_app.interface.search(":most_viewed()")


class TestFailNTimesEndpoint:
    def test_fails_then_recovers_for_good(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        failing = FailNTimesEndpoint(original, fail_count=2, name="newest")
        request = ProviderRequest()
        for _ in range(2):
            with pytest.raises(ProviderError, match="simulated outage"):
                failing(request)
        failing(request)  # call 3 recovers
        failing(request)  # and stays recovered
        assert failing.calls == 4

    def test_zero_failures_is_a_passthrough(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        failing = FailNTimesEndpoint(original, fail_count=0)
        assert failing(ProviderRequest()) is not None
        assert failing.calls == 1

    def test_negative_count_rejected(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        with pytest.raises(ValueError):
            FailNTimesEndpoint(original, fail_count=-1)

    def test_outage_is_transient(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        failing = FailNTimesEndpoint(original, fail_count=1)
        with pytest.raises(ProviderError) as excinfo:
            failing(ProviderRequest())
        assert is_transient(excinfo.value)


class TestLatencySpikeEndpoint:
    def test_schedule_advances_the_clock(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        clock = SimulationClock()
        spiky = LatencySpikeEndpoint(original, clock, [5.0, 250.0])
        # abs tolerance: the epoch is ~1.7e9 s, so float addition of a
        # 5ms delta carries micro-second rounding
        start = clock.now()
        spiky(ProviderRequest())
        assert clock.now() - start == pytest.approx(0.005, abs=1e-5)
        spiky(ProviderRequest())
        assert clock.now() - start == pytest.approx(0.255, abs=1e-5)
        spiky(ProviderRequest())  # schedule cycles back to 5ms
        assert clock.now() - start == pytest.approx(0.260, abs=1e-5)

    def test_empty_or_negative_schedule_rejected(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        clock = SimulationClock()
        with pytest.raises(ValueError):
            LatencySpikeEndpoint(original, clock, [])
        with pytest.raises(ValueError):
            LatencySpikeEndpoint(original, clock, [5.0, -1.0])

    def test_result_passes_through_unchanged(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        clock = SimulationClock()
        spiky = LatencySpikeEndpoint(original, clock, [10.0])
        request = ProviderRequest()
        assert spiky(request).artifact_ids() == original(request).artifact_ids()


class TestResilienceErrorClassification:
    def test_breaker_and_deadline_errors_are_not_transient(self):
        assert not is_transient(CircuitOpenError("x://p", 5.0))
        assert not is_transient(DeadlineExceededError("x://p", 100.0))
