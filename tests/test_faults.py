"""Failure-injection tests: broken providers degrade, never crash the UI."""

import pytest

from repro.errors import ProviderError, RepresentationError
from repro.providers.base import ProviderRequest, Representation
from repro.providers.faults import FlakyEndpoint, SlowEndpoint, WrongShapeEndpoint


@pytest.fixture
def flaky_app(tiny_app):
    """tiny_app with the most_viewed endpoint failing on every call."""
    original = tiny_app.registry.resolve("catalog://most_viewed")
    tiny_app.registry.register(
        "catalog://most_viewed",
        FlakyEndpoint(original, fail_on=lambda index: True,
                      name="most_viewed"),
        replace=True,
    )
    return tiny_app


class TestFlakyEndpoint:
    def test_fails_on_schedule(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        flaky = FlakyEndpoint(original, fail_on={2}, name="newest")
        request = ProviderRequest()
        flaky(request)  # call 1 succeeds
        with pytest.raises(ProviderError, match="simulated outage"):
            flaky(request)  # call 2 fails
        flaky(request)  # call 3 succeeds
        assert flaky.calls == 3

    def test_predicate_schedule(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        flaky = FlakyEndpoint(original, fail_on=lambda i: i % 2 == 0)
        request = ProviderRequest()
        flaky(request)
        with pytest.raises(ProviderError):
            flaky(request)


class TestSlowEndpoint:
    def test_budget_exhaustion(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        slow = SlowEndpoint(original, latency_ms=40, budget_ms=100)
        request = ProviderRequest()
        slow(request)
        slow(request)
        with pytest.raises(ProviderError, match="timeout"):
            slow(request)  # 120ms > 100ms budget
        assert slow.timed_out == 1
        assert slow.remaining_ms == pytest.approx(20.0)

    def test_negative_params_rejected(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        with pytest.raises(ValueError):
            SlowEndpoint(original, latency_ms=-1, budget_ms=10)


class TestInterfaceContainment:
    def test_overview_skips_broken_provider(self, flaky_app):
        session = flaky_app.session("u-ann")
        tabs = session.open_home()
        names = [t.provider_name for t in tabs]
        assert "most_viewed" not in names
        assert "recents" in names  # the rest of the UI is intact

    def test_failure_recorded_for_observability(self, flaky_app):
        flaky_app.session("u-ann").open_home()
        errors = dict(flaky_app.interface.last_errors)
        assert "most_viewed" in errors
        assert "simulated outage" in errors["most_viewed"]

    def test_errors_reset_between_generations(self, flaky_app):
        session = flaky_app.session("u-ann")
        session.open_home()
        # heal the endpoint
        from repro.providers.builtin import BuiltinProviders

        healthy = BuiltinProviders(flaky_app.store).most_viewed
        flaky_app.registry.register("catalog://most_viewed", healthy,
                                    replace=True)
        session.open_browse()
        assert flaky_app.interface.last_errors == []

    def test_open_view_still_raises_directly(self, flaky_app):
        """Explicitly opening the broken view surfaces the error — only
        bulk generation degrades silently."""
        with pytest.raises(ProviderError):
            flaky_app.interface.open_view("most_viewed", user_id="u-ann")

    def test_home_page_skips_broken_provider(self, flaky_app):
        manager = flaky_app.home_pages
        spec = manager.configure(
            "t-1", ["most_viewed", "recents"], acting_user="u-ann"
        )
        flaky_app.update_spec(spec)
        # re-break the endpoint (update_spec doesn't touch the registry,
        # but be explicit for readability)
        page = flaky_app.home_pages.home_page("t-1", user_id="u-ann")
        assert page.provider_names() == ["recents"]

    def test_exploration_skips_broken_provider(self, tiny_app):
        original = tiny_app.registry.resolve("catalog://similar")
        tiny_app.registry.register(
            "catalog://similar",
            FlakyEndpoint(original, fail_on=lambda i: True, name="similar"),
            replace=True,
        )
        session = tiny_app.session("u-ann")
        session.select_artifact("t-orders")
        surfaced = session.explore_selection()
        providers = {s.provider_name for s in surfaced}
        assert "similar" not in providers
        assert "joinable" in providers  # others unaffected


class TestContractEnforcement:
    def test_wrong_shape_rejected_at_boundary(self, tiny_app):
        tiny_app.registry.register(
            "catalog://embedding_map",
            WrongShapeEndpoint(["t-orders"]),
            replace=True,
        )
        with pytest.raises(RepresentationError, match="declares"):
            tiny_app.interface.open_view("embedding_map", user_id="u-ann")

    def test_search_propagates_provider_failure(self, flaky_app):
        """A query that *needs* the broken provider fails loudly —
        silent empty results would be worse than an error."""
        with pytest.raises(ProviderError):
            flaky_app.interface.search(":most_viewed()")
