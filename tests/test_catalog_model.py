"""Unit tests for catalog entities."""

import pytest

from repro.catalog.model import (
    Artifact,
    ArtifactType,
    BadgeAssignment,
    Column,
    Team,
    UsageEvent,
    User,
)


class TestArtifactType:
    def test_coerce_from_string(self):
        assert ArtifactType.coerce("table") is ArtifactType.TABLE
        assert ArtifactType.coerce("TABLE") is ArtifactType.TABLE

    def test_coerce_passthrough(self):
        assert ArtifactType.coerce(ArtifactType.WORKBOOK) is ArtifactType.WORKBOOK

    def test_coerce_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown artifact type"):
            ArtifactType.coerce("spreadsheet")


class TestColumn:
    def test_valid_dtypes(self):
        for dtype in ("string", "integer", "float", "date", "boolean"):
            assert Column("c", dtype).dtype == dtype

    def test_invalid_dtype(self):
        with pytest.raises(ValueError, match="unknown dtype"):
            Column("c", "varchar")


class TestUsageEvent:
    def test_valid_actions(self):
        for action in UsageEvent.VALID_ACTIONS:
            UsageEvent("a", "u", action, 0.0)

    def test_invalid_action(self):
        with pytest.raises(ValueError, match="unknown usage action"):
            UsageEvent("a", "u", "click", 0.0)


class TestTeam:
    def test_admin_is_member(self):
        team = Team(id="t", name="T", admin_ids=("u1",), member_ids=("u2",))
        assert team.is_member("u1")
        assert team.is_member("u2")
        assert team.is_admin("u1")
        assert not team.is_admin("u2")
        assert not team.is_member("u3")


def make_artifact(**overrides):
    defaults = dict(
        id="a-1",
        name="SALES",
        artifact_type="table",
        owner_id="u-1",
        created_at=100.0,
    )
    defaults.update(overrides)
    return Artifact(**defaults)


class TestArtifact:
    def test_type_coerced_from_string(self):
        assert make_artifact().artifact_type is ArtifactType.TABLE

    def test_modified_defaults_to_created(self):
        assert make_artifact().modified_at == 100.0

    def test_badge_queries(self):
        artifact = make_artifact(badges=(
            BadgeAssignment("endorsed", "u-2", 1.0),
            BadgeAssignment("endorsed", "u-3", 2.0),
            BadgeAssignment("warning", "u-2", 3.0),
        ))
        assert artifact.badge_names() == ("endorsed", "endorsed", "warning")
        assert artifact.badged_by("endorsed") == ("u-2", "u-3")
        assert artifact.has_badge("endorsed")
        assert artifact.has_badge("endorsed", granted_by="u-3")
        assert not artifact.has_badge("endorsed", granted_by="u-9")
        assert not artifact.has_badge("certified")

    def test_field_accessor_direct(self):
        artifact = make_artifact(tags=("sales",))
        assert artifact.field("name") == "SALES"
        assert artifact.field("type") == "table"
        assert artifact.field("owner") == "u-1"
        assert artifact.field("tags") == ("sales",)

    def test_field_accessor_extra_and_default(self):
        artifact = make_artifact(extra={"quality": 0.9})
        assert artifact.field("quality") == 0.9
        assert artifact.field("nonexistent") is None
        assert artifact.field("nonexistent", 7) == 7

    def test_searchable_text_includes_columns(self):
        artifact = make_artifact(
            description="fact table",
            columns=(Column("order_id", "integer"),),
        )
        text = artifact.searchable_text()
        assert "SALES" in text
        assert "fact table" in text
        assert "order_id" in text

    def test_with_badge_is_copy(self):
        original = make_artifact()
        updated = original.with_badge(BadgeAssignment("endorsed", "u-2", 1.0))
        assert original.badges == ()
        assert updated.badge_names() == ("endorsed",)
        assert updated.id == original.id

    def test_iter_text_tokens(self):
        artifact = make_artifact(name="SalesOrders")
        assert "sales" in list(artifact.iter_text_tokens())
