"""Tests for the versioned spec store."""

import pytest

from repro.core.spec.history import SpecStore
from repro.core.spec.model import ProviderSpec, RankingWeight
from repro.errors import SpecError, SpecValidationError
from repro.providers.suite import default_spec


def new_provider(name="quality"):
    return ProviderSpec(name=name, endpoint=f"model://{name}",
                        representation="list", category="relatedness")


@pytest.fixture
def store():
    return SpecStore(default_spec(), author="ops")


class TestCommit:
    def test_initial_revision(self, store):
        assert store.current_revision == 1
        assert store.current == default_spec()
        assert store.history()[0].author == "ops"

    def test_commit_advances(self, store):
        updated = store.current.with_provider(new_provider())
        entry = store.commit(updated, author="ada", message="add quality")
        assert entry.revision == 2
        assert store.current == updated
        assert "added quality" in entry.diff_summary

    def test_default_message_is_diff_summary(self, store):
        updated = store.current.without_provider("recents")
        entry = store.commit(updated, author="ada")
        assert entry.message == "removed recents"

    def test_noop_commit_rejected(self, store):
        with pytest.raises(SpecError, match="no-op"):
            store.commit(store.current, author="ada")

    def test_invalid_spec_rejected(self, store):
        broken = store.current.with_provider(
            ProviderSpec(name="bad", endpoint="not a uri",
                         representation="list")
        )
        with pytest.raises(SpecValidationError):
            store.commit(broken, author="ada")
        assert store.current_revision == 1  # nothing recorded

    def test_initial_spec_validated(self):
        from repro.core.spec.model import HumboldtSpec

        bad = HumboldtSpec(providers=(
            ProviderSpec(name="x", endpoint="nope", representation="list"),
        ))
        with pytest.raises(SpecValidationError):
            SpecStore(bad)


class TestRollback:
    def test_rollback_appends(self, store):
        v2 = store.commit(store.current.with_provider(new_provider()),
                          author="ada")
        entry = store.rollback(1, author="ops")
        assert entry.revision == 3
        assert store.current == default_spec()
        assert "rollback to r1" in entry.message
        # history intact: all three revisions visible
        assert [e.revision for e in store.history()] == [1, 2, 3]
        assert store.revision(2).spec == v2.spec

    def test_rollback_to_current_rejected(self, store):
        with pytest.raises(SpecError, match="already the current"):
            store.rollback(1, author="ops")

    def test_rollback_unknown_revision(self, store):
        with pytest.raises(SpecError, match="no spec revision"):
            store.rollback(99, author="ops")


class TestChangelog:
    def test_newest_first(self, store):
        store.commit(store.current.with_provider(new_provider()),
                     author="ada", message="add quality model")
        log = store.changelog()
        first_line = log.splitlines()[0]
        assert first_line.startswith("r2 by ada: add quality model")


class TestPersistence:
    def test_round_trip(self, store, tmp_path):
        store.commit(store.current.with_provider(new_provider()),
                     author="ada")
        store.commit(
            store.current.with_global_ranking(RankingWeight("views", 9.0)),
            author="ada",
        )
        path = store.save(tmp_path / "spec_history.json")
        loaded = SpecStore.load(path)
        assert loaded.current == store.current
        assert [e.revision for e in loaded.history()] == [1, 2, 3]
        assert loaded.history()[1].author == "ada"

    def test_load_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text('{"revisions": []}', encoding="utf-8")
        with pytest.raises(SpecError, match="no revisions"):
            SpecStore.load(path)

    def test_loaded_store_accepts_commits(self, store, tmp_path):
        path = store.save(tmp_path / "h.json")
        loaded = SpecStore.load(path)
        loaded.commit(loaded.current.with_provider(new_provider()),
                      author="ada")
        assert loaded.current_revision == 2


class TestIntegrationWithWorkbook:
    def test_spec_store_drives_the_app(self, tiny_app, tmp_path):
        store = SpecStore(tiny_app.spec, author="ops")
        updated = store.commit(
            store.current.without_provider("newest"), author="ada"
        ).spec
        tiny_app.update_spec(updated)
        session = tiny_app.session("u-ann")
        assert "newest" not in [t.provider_name for t in session.open_home()]
        # roll back and regenerate
        tiny_app.update_spec(store.rollback(1, author="ops").spec)
        session = tiny_app.session("u-ann")
        assert "newest" in [t.provider_name for t in session.open_home()]
