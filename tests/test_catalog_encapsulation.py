"""Static scans: storage backends stay internal to ``repro.catalog``.

The backend split only holds its "observably interchangeable" promise if
nothing outside the catalog package reaches around :class:`CatalogStore`:
a module importing ``SqliteBackend`` directly, or poking ``store._...``
internals, would couple itself to one backend's layout and silently break
against the other.  Same enforcement style as the execution layer's
policy-shim scan (``test_no_legacy_construction_left_in_src``).
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Names/modules that are private to repro.catalog.
_BACKEND_REFERENCES = re.compile(
    r"repro\.catalog\.backend"
    r"|repro\.catalog\.sqlite_backend"
    r"|\bInMemoryBackend\b"
    r"|\bSqliteBackend\b"
)

#: ``<something>store._attr`` — reaching into CatalogStore internals.
_PRIVATE_STORE_ACCESS = re.compile(r"\bstore\._[A-Za-z]")


def _non_catalog_sources():
    for path in sorted(SRC.rglob("*.py")):
        if "catalog" in path.parts:
            continue
        yield path, path.read_text(encoding="utf-8")


class TestBackendEncapsulation:
    def test_no_backend_imports_outside_catalog_package(self):
        offenders = [
            str(path)
            for path, text in _non_catalog_sources()
            if _BACKEND_REFERENCES.search(text)
        ]
        assert offenders == []

    def test_no_private_store_attribute_access_outside_catalog(self):
        offenders = [
            f"{path}:{i + 1}: {line.strip()}"
            for path, text in _non_catalog_sources()
            if "repro.catalog" in text  # only files that handle a CatalogStore
            for i, line in enumerate(text.splitlines())
            if _PRIVATE_STORE_ACCESS.search(line)
        ]
        assert offenders == []
