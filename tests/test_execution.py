"""Tests for the provider execution layer.

Covers the engine's cache (hit/miss, TTL, LRU, invalidation on catalog
mutation, registry swap and spec swap), parallel ``fetch_many`` with
deterministic ordering and fault containment, the retry/backoff
middleware composing with :mod:`repro.providers.faults`, instrumentation,
and the end-to-end guarantees: repeated queries and overview
regenerations on an unchanged catalog perform zero duplicate endpoint
invocations.
"""

import threading

import pytest

from repro.catalog.model import Artifact, User
from repro.errors import (
    MissingInputError,
    ProviderError,
    ProviderTimeoutError,
    RepresentationError,
)
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    ScoredArtifact,
    list_result,
)
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    request_key,
)
from repro.providers.faults import FlakyEndpoint, SlowEndpoint, is_transient
from repro.providers.registry import EndpointRegistry
from repro.workbook.app import WorkbookApp


class CountingEndpoint:
    """Returns a fixed list result; counts invocations."""

    def __init__(self, ids=("a-1", "a-2")):
        self.calls = 0
        self._ids = tuple(ids)

    def __call__(self, request):
        self.calls += 1
        return list_result([ScoredArtifact(aid) for aid in self._ids])


@pytest.fixture
def counting_registry():
    registry = EndpointRegistry()
    endpoint = CountingEndpoint()
    registry.register("x://count", endpoint)
    return registry, endpoint


class TestRequestKey:
    def test_input_order_is_canonical(self):
        a = ProviderRequest(inputs={"user": "u-1", "badge": "gold"})
        b = ProviderRequest(inputs={"badge": "gold", "user": "u-1"})
        assert request_key("x://p", a) == request_key("x://p", b)

    def test_context_participates(self):
        base = ProviderRequest()
        other = ProviderRequest(context=RequestContext(user_id="u-1"))
        limited = ProviderRequest(context=RequestContext(limit=5))
        keys = {
            request_key("x://p", base),
            request_key("x://p", other),
            request_key("x://p", limited),
        }
        assert len(keys) == 3

    def test_endpoint_participates(self):
        request = ProviderRequest()
        assert request_key("x://p", request) != request_key("x://q", request)


class TestCache:
    def test_second_fetch_is_a_hit(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        request = ProviderRequest()
        first = engine.fetch("x://count", request)
        second = engine.fetch("x://count", request)
        assert endpoint.calls == 1
        assert first.artifact_ids() == second.artifact_ids()
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1

    def test_distinct_requests_both_fetch(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch(
            "x://count", ProviderRequest(context=RequestContext(limit=99))
        )
        assert endpoint.calls == 2

    def test_ttl_expiry(self, counting_registry):
        registry, endpoint = counting_registry
        fake_now = [0.0]
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy(cache_ttl_s=10.0),
            timer=lambda: fake_now[0],
        )
        engine.fetch("x://count", ProviderRequest())
        fake_now[0] = 5.0
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        fake_now[0] = 11.0
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_ttl_zero_disables_caching(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry, policy=ExecutionPolicy(cache_ttl_s=0))
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2
        assert engine.cache_size == 0

    def test_lru_bound(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy(cache_max_entries=3)
        )
        for limit in range(1, 6):
            engine.fetch(
                "x://count",
                ProviderRequest(context=RequestContext(limit=limit)),
            )
        assert engine.cache_size == 3

    def test_explicit_invalidation(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.invalidate()
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_per_endpoint_invalidation(self, counting_registry):
        registry, endpoint = counting_registry
        other = CountingEndpoint(ids=("b-1",))
        registry.register("x://other", other)
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://other", ProviderRequest())
        engine.invalidate("x://other")
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://other", ProviderRequest())
        assert endpoint.calls == 1
        assert other.calls == 2

    def test_errors_are_not_cached(self):
        registry = EndpointRegistry()
        inner = CountingEndpoint()
        flaky = FlakyEndpoint(inner, fail_on={1}, name="flaky")
        registry.register("x://flaky", flaky)
        engine = ExecutionEngine(registry)
        with pytest.raises(ProviderError):
            engine.fetch("x://flaky", ProviderRequest())
        result = engine.fetch("x://flaky", ProviderRequest())
        assert result.artifact_ids() == ["a-1", "a-2"]


class TestInvalidationOnMutation:
    def test_catalog_mutation_flushes_cache(self, tiny_store):
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        registry.register("x://count", endpoint)
        engine = ExecutionEngine(registry, store=tiny_store)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        tiny_store.grant_badge("t-web", "endorsed", "u-ann")
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_usage_event_flushes_cache(self, tiny_store):
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        registry.register("x://count", endpoint)
        engine = ExecutionEngine(registry, store=tiny_store)
        engine.fetch("x://count", ProviderRequest())
        tiny_store.record("t-orders", "u-bob", "view")
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_registry_swap_flushes_cache(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        healed = CountingEndpoint(ids=("z-9",))
        registry.register("x://count", healed, replace=True)
        result = engine.fetch("x://count", ProviderRequest())
        assert result.artifact_ids() == ["z-9"]

    def test_spec_swap_invalidates(self, tiny_app):
        user = "u-ann"
        tiny_app.interface.overview_tabs(user_id=user)
        assert tiny_app.engine.cache_size > 0
        tiny_app.update_spec(tiny_app.spec)
        assert tiny_app.engine.cache_size == 0
        # stats survive the swap — the engine is shared across versions
        assert tiny_app.stats.total_calls > 0


class TestScope:
    def test_scope_memoises_even_without_cache(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry, policy=ExecutionPolicy(cache_ttl_s=0))
        with engine.scope():
            engine.fetch("x://count", ProviderRequest())
            engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2  # memo died with the scope


class TestFetchMany:
    def test_results_align_with_input_order(self):
        registry = EndpointRegistry()
        for name in ("alpha", "beta", "gamma"):
            registry.register(
                f"x://{name}", CountingEndpoint(ids=(f"{name}-1",))
            )
        engine = ExecutionEngine(registry)
        calls = [
            ("x://gamma", ProviderRequest()),
            ("x://alpha", ProviderRequest()),
            ("x://beta", ProviderRequest()),
        ]
        outcomes = engine.fetch_many(calls)
        assert [o.endpoint for o in outcomes] == [
            "x://gamma", "x://alpha", "x://beta",
        ]
        assert [o.result.artifact_ids() for o in outcomes] == [
            ["gamma-1"], ["alpha-1"], ["beta-1"],
        ]

    def test_ordering_is_deterministic_across_runs(self):
        registry = EndpointRegistry()
        for index in range(12):
            registry.register(
                f"x://p{index}", CountingEndpoint(ids=(f"id-{index}",))
            )
        engine = ExecutionEngine(registry)
        calls = [(f"x://p{index}", ProviderRequest()) for index in range(12)]
        first = [o.result.artifact_ids() for o in engine.fetch_many(calls)]
        engine.invalidate()
        second = [o.result.artifact_ids() for o in engine.fetch_many(calls)]
        assert first == second

    def test_duplicates_fetch_once(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry, policy=ExecutionPolicy(cache_ttl_s=0))
        outcomes = engine.fetch_many(
            [("x://count", ProviderRequest())] * 4
        )
        assert endpoint.calls == 1
        assert all(o.ok for o in outcomes)

    def test_fault_containment(self, counting_registry):
        registry, _ = counting_registry
        registry.register(
            "x://broken",
            FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                          name="broken"),
        )
        engine = ExecutionEngine(registry)
        outcomes = engine.fetch_many([
            ("x://count", ProviderRequest()),
            ("x://broken", ProviderRequest()),
            ("x://count", ProviderRequest(context=RequestContext(limit=3))),
        ])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ProviderError)
        assert engine.stats.total_errors == 1

    def test_actually_runs_on_threads(self):
        registry = EndpointRegistry()
        seen_threads = set()

        def make_endpoint(name):
            def endpoint(request):
                seen_threads.add(threading.current_thread().name)
                return list_result([ScoredArtifact(name)])
            return endpoint

        for index in range(6):
            registry.register(f"x://t{index}", make_endpoint(f"id-{index}"))
        engine = ExecutionEngine(registry)
        engine.fetch_many(
            [(f"x://t{index}", ProviderRequest()) for index in range(6)]
        )
        assert any(t.startswith("humboldt-exec") for t in seen_threads)

    def test_serial_when_one_worker(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry, policy=ExecutionPolicy(max_workers=1))
        outcomes = engine.fetch_many([
            ("x://count", ProviderRequest()),
            ("x://count", ProviderRequest(context=RequestContext(limit=3))),
        ])
        assert all(o.ok for o in outcomes)
        assert endpoint.calls == 2


class TestRetryMiddleware:
    def test_transient_outage_retried(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1}, name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy(attempts=3, backoff_base_ms=10),
            sleep=sleeps.append,
        )
        result = engine.fetch("x://flaky", ProviderRequest())
        assert result.artifact_ids() == ["a-1", "a-2"]
        assert flaky.calls == 2
        assert engine.stats.total_retries == 1
        assert sleeps == [0.01]

    def test_backoff_doubles(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1, 2}, name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy(attempts=3, backoff_base_ms=10),
            sleep=sleeps.append,
        )
        engine.fetch("x://flaky", ProviderRequest())
        assert sleeps == [0.01, 0.02]

    def test_attempts_exhausted_raises(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                              name="flaky")
        registry.register("x://flaky", flaky)
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy(attempts=3, backoff_base_ms=0),
            sleep=lambda s: None,
        )
        with pytest.raises(ProviderError):
            engine.fetch("x://flaky", ProviderRequest())
        assert flaky.calls == 3
        assert engine.stats.total_retries == 2

    def test_timeout_is_retried(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        slow = SlowEndpoint(original, latency_ms=60, budget_ms=100,
                            name="newest")
        tiny_registry.register("catalog://newest", slow, replace=True)
        engine = ExecutionEngine(
            tiny_registry,
            policy=ExecutionPolicy(attempts=2, backoff_base_ms=0),
            sleep=lambda s: None,
        )
        engine.fetch("catalog://newest", ProviderRequest())  # 60ms spent
        # second call times out (60 > 40 remaining) and the retry also
        # times out: ProviderTimeoutError surfaces after both attempts
        with pytest.raises(ProviderTimeoutError):
            engine.fetch(
                "catalog://newest",
                ProviderRequest(context=RequestContext(limit=5)),
            )
        assert slow.timed_out == 2

    def test_missing_input_not_retried(self, tiny_registry):
        engine = ExecutionEngine(
            tiny_registry, policy=ExecutionPolicy(attempts=5)
        )
        with pytest.raises(MissingInputError):
            engine.fetch("catalog://owned_by", ProviderRequest())
        assert engine.stats.total_retries == 0

    def test_wrong_shape_not_retried(self):
        registry = EndpointRegistry()
        calls = []

        def wrong_shape(request):
            calls.append(1)
            return ProviderResult(
                representation=Representation.GRAPH,
                items=(ScoredArtifact("a-1"),),
            )

        registry.register("x://wrong", wrong_shape)
        engine = ExecutionEngine(registry, policy=ExecutionPolicy(attempts=5))
        with pytest.raises(RepresentationError):
            engine.fetch("x://wrong", ProviderRequest())
        assert len(calls) == 1

    def test_is_transient_classification(self):
        assert is_transient(ProviderError("p", "outage"))
        assert is_transient(ProviderTimeoutError("p", "timeout"))
        assert not is_transient(MissingInputError("p", "user"))
        assert not is_transient(RepresentationError("p", "bad shape"))
        assert not is_transient(ValueError("not a provider error"))


class TestStats:
    def test_latency_percentiles_present(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.snapshot()
        latency = snap["endpoints"]["x://count"]["latency_ms"]
        assert set(latency) == {"mean", "p50", "p95", "p99", "max"}
        assert latency["max"] >= latency["p50"] >= 0.0

    def test_render_is_a_table(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        text = engine.stats.render()
        assert "x://count" in text
        assert "TOTAL" in text

    def test_truncation_recorded_when_limit_filled(self):
        registry = EndpointRegistry()
        registry.register("x://big", CountingEndpoint(ids=("a", "b", "c")))
        engine = ExecutionEngine(registry)
        engine.fetch(
            "x://big", ProviderRequest(context=RequestContext(limit=3))
        )
        assert engine.stats.endpoint("x://big").truncations == 1
        assert engine.stats.truncations == 1

    def test_reset(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.stats.reset()
        assert engine.stats.total_calls == 0


class TestEndToEndDeduplication:
    """The acceptance bar: unchanged catalog ⇒ zero duplicate fetches."""

    def test_repeated_overview_zero_duplicate_invocations(self, tiny_app):
        tiny_app.interface.overview_tabs(user_id="u-ann")
        calls_after_first = tiny_app.stats.total_calls
        assert calls_after_first > 0
        second = tiny_app.interface.overview_tabs(user_id="u-ann")
        assert tiny_app.stats.total_calls == calls_after_first
        assert [t.provider_name for t in second]  # still fully generated

    def test_repeated_query_zero_duplicate_invocations(self, tiny_app):
        first = tiny_app.interface.search("badged: endorsed & type: table")
        calls_after_first = tiny_app.stats.total_calls
        second = tiny_app.interface.search("badged: endorsed & type: table")
        assert tiny_app.stats.total_calls == calls_after_first
        assert first[0].artifact_ids() == second[0].artifact_ids()

    def test_duplicate_subquery_fetches_once_within_search(self, tiny_app):
        tiny_app.interface.search("badged: endorsed | badged: endorsed")
        endpoint_stats = tiny_app.stats.endpoint("catalog://badged")
        assert endpoint_stats.calls == 1

    def test_mutation_invalidates_between_overviews(self, tiny_app):
        tiny_app.interface.overview_tabs(user_id="u-ann")
        calls_after_first = tiny_app.stats.total_calls
        tiny_app.store.grant_badge("t-web", "endorsed", "u-ann")
        tiny_app.interface.overview_tabs(user_id="u-ann")
        assert tiny_app.stats.total_calls > calls_after_first

    def test_parallel_overview_matches_serial_content(self, tiny_store):
        """Parallel fan-out must not change what the UI shows: a serial
        engine (one worker) and the default parallel one generate
        identical tabs."""
        parallel_app = WorkbookApp(tiny_store)
        serial_app = WorkbookApp(tiny_store)
        serial_app.interface.engine.policy = ExecutionPolicy(max_workers=1)
        parallel = [
            (tab.provider_name, tab.view.artifact_ids())
            for tab in parallel_app.interface.overview_tabs(user_id="u-ann")
        ]
        serial = [
            (tab.provider_name, tab.view.artifact_ids())
            for tab in serial_app.interface.overview_tabs(user_id="u-ann")
        ]
        assert parallel == serial
        assert parallel  # non-degenerate


class TestSearchTruncationSignal:
    def test_truncated_flag_set_when_limit_filled(self, tiny_app):
        evaluator = tiny_app.interface.evaluator
        original = evaluator.fetch_limit
        try:
            evaluator.fetch_limit = 2
            result = tiny_app.interface.search("type: table")[0]
            assert result.truncated
            assert tiny_app.stats.truncations > 0
        finally:
            evaluator.fetch_limit = original

    def test_not_truncated_by_default(self, tiny_app):
        result = tiny_app.interface.search("type: table")[0]
        assert not result.truncated


class TestIsEmptyRegression:
    def test_graph_with_edges_is_not_empty(self):
        """A nodes+edges graph where only ``nodes`` was checked used to be
        inconsistent with ``validate``; edges now count as payload."""
        from repro.providers.base import GraphEdge

        result = ProviderResult(
            representation=Representation.GRAPH,
            nodes=("a", "b"),
            edges=(GraphEdge("a", "b", "joins"),),
        )
        assert not result.is_empty()
        assert result.payload_size() == 2

    def test_empty_graph_is_empty(self):
        result = ProviderResult(representation=Representation.GRAPH)
        assert result.is_empty()

    def test_list_payload_size(self):
        result = list_result([ScoredArtifact("a"), ScoredArtifact("b")])
        assert not result.is_empty()
        assert result.payload_size() == 2


class TestTokenCache:
    def test_cached_tokens_match_fresh_tokenize(self, tiny_store):
        from repro.util.textutil import tokenize

        artifact = tiny_store.artifact("t-orders")
        name_tokens, text_tokens = tiny_store.artifact_tokens("t-orders")
        assert name_tokens == frozenset(tokenize(artifact.name))
        assert text_tokens == frozenset(tokenize(artifact.searchable_text()))
        # second call returns the memo (same object)
        again = tiny_store.artifact_tokens("t-orders")
        assert again[0] is name_tokens

    def test_mutation_invalidates_token_cache(self, tiny_store):
        from repro.util.textutil import tokenize

        before = tiny_store.artifact_tokens("t-orders")
        tiny_store.grant_badge("t-orders", "golden", "u-ann")
        after = tiny_store.artifact_tokens("t-orders")
        # the memo entry was dropped and rebuilt from the new revision
        assert after[0] is not before[0]
        fresh = tiny_store.artifact("t-orders")
        assert after[1] == frozenset(tokenize(fresh.searchable_text()))

    def test_version_counter_monotonic(self, tiny_store):
        before = tiny_store.version
        tiny_store.add_user(User(id="u-new", name="New User"))
        tiny_store.add_artifact(
            Artifact(id="a-new", name="NEW_TABLE", artifact_type="table",
                     owner_id="u-new", created_at=1.0)
        )
        tiny_store.record("a-new", "u-new", "view")
        assert tiny_store.version == before + 3


class TestStatsSnapshotImmutability:
    """``ExecutionStats.endpoint`` hands out a frozen snapshot, not the
    live mutable record (callers used to be able to corrupt counters)."""

    def test_snapshot_is_detached_from_later_activity(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        assert snap.calls == 1
        engine.fetch("x://count", ProviderRequest(
            context=RequestContext(limit=3)
        ))
        assert snap.calls == 1  # not a live view
        assert engine.stats.endpoint("x://count").calls == 2

    def test_snapshot_rejects_mutation(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        with pytest.raises(AttributeError):
            snap.calls = 99
        assert engine.stats.endpoint("x://count").calls == 1

    def test_snapshot_latencies_are_a_tuple_copy(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        assert isinstance(snap.latencies_ms, tuple)
        assert len(snap.latencies_ms) == 1
        summary = snap.latency_summary()
        assert summary["max"] >= summary["p50"] >= 0.0

    def test_unknown_endpoint_snapshot_is_zeroed(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        snap = engine.stats.endpoint("x://never-fetched")
        assert snap.calls == 0 and snap.latencies_ms == ()


class TestBatchDedupCounting:
    """In-batch duplicates of a *pending miss* are dedups, not cache
    hits — counting them as hits used to inflate cache_hit_rate."""

    def test_duplicate_of_pending_miss_counts_as_dedup(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch_many([("x://count", ProviderRequest())] * 3)
        assert endpoint.calls == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 0
        assert engine.stats.dedups == 2
        assert engine.stats.endpoint("x://count").dedups == 2

    def test_duplicate_of_cached_hit_still_counts_as_hit(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())  # prime the cache
        engine.fetch_many([("x://count", ProviderRequest())] * 2)
        assert endpoint.calls == 1
        assert engine.stats.cache_hits == 2
        assert engine.stats.dedups == 0

    def test_hit_rate_unpolluted_by_batch_duplicates(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch_many([("x://count", ProviderRequest())] * 10)
        assert engine.stats.cache_hit_rate == 0.0


def _exec_threads():
    """Live executor thread *objects* (names repeat across pools)."""
    return {
        t for t in threading.enumerate()
        if t.name.startswith("humboldt-exec")
    }


class TestEngineLifecycle:
    def test_close_joins_worker_threads(self):
        registry = EndpointRegistry()
        for index in range(4):
            registry.register(f"x://t{index}", CountingEndpoint())
        before = _exec_threads()
        engine = ExecutionEngine(registry)
        engine.fetch_many(
            [(f"x://t{index}", ProviderRequest()) for index in range(4)]
        )
        spawned = _exec_threads() - before
        assert spawned  # pool actually spun up
        engine.close()
        assert all(not t.is_alive() for t in spawned)

    def test_close_is_idempotent_and_allows_reuse(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.close()
        engine.close()
        # fetches after close still work (pool recreated on demand)
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        engine.close()

    def test_context_manager_closes(self):
        registry = EndpointRegistry()
        for index in range(4):
            registry.register(f"x://t{index}", CountingEndpoint())
        before = _exec_threads()
        with ExecutionEngine(registry) as engine:
            engine.fetch_many(
                [(f"x://t{index}", ProviderRequest()) for index in range(4)]
            )
        assert all(not t.is_alive() for t in _exec_threads() - before)

    def test_workbook_app_context_manager_closes_engine(self, tiny_store):
        before = _exec_threads()
        with WorkbookApp(tiny_store) as app:
            app.interface.overview_tabs(user_id="u-ann")
        assert all(not t.is_alive() for t in _exec_threads() - before)
