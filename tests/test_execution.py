"""Tests for the provider execution layer.

Covers the engine's cache (hit/miss, TTL, LRU, invalidation on catalog
mutation, registry swap and spec swap), parallel ``fetch_many`` with
deterministic ordering and fault containment, the retry/backoff
middleware composing with :mod:`repro.providers.faults`, instrumentation,
and the end-to-end guarantees: repeated queries and overview
regenerations on an unchanged catalog perform zero duplicate endpoint
invocations.
"""

import dataclasses
import threading
from pathlib import Path

import pytest

from repro.catalog.model import Artifact, User
from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    MissingInputError,
    ProviderError,
    ProviderTimeoutError,
    RepresentationError,
)
from repro.providers.base import (
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    ScoredArtifact,
    list_result,
)
from repro.providers.execution import (
    BreakerPolicy,
    BreakerState,
    CachePolicy,
    ExecutionEngine,
    ExecutionPolicy,
    FetchStatus,
    RetryPolicy,
    request_key,
)
from repro.providers.faults import (
    FailNTimesEndpoint,
    FlakyEndpoint,
    SlowEndpoint,
    is_transient,
)
from repro.providers.registry import EndpointRegistry
from repro.util.clock import SimulationClock
from repro.workbook.app import WorkbookApp


class CountingEndpoint:
    """Returns a fixed list result; counts invocations."""

    def __init__(self, ids=("a-1", "a-2")):
        self.calls = 0
        self._ids = tuple(ids)

    def __call__(self, request):
        self.calls += 1
        return list_result([ScoredArtifact(aid) for aid in self._ids])


@pytest.fixture
def counting_registry():
    registry = EndpointRegistry()
    endpoint = CountingEndpoint()
    registry.register("x://count", endpoint)
    return registry, endpoint


class TestRequestKey:
    def test_input_order_is_canonical(self):
        a = ProviderRequest(inputs={"user": "u-1", "badge": "gold"})
        b = ProviderRequest(inputs={"badge": "gold", "user": "u-1"})
        assert request_key("x://p", a) == request_key("x://p", b)

    def test_context_participates(self):
        base = ProviderRequest()
        other = ProviderRequest(context=RequestContext(user_id="u-1"))
        limited = ProviderRequest(context=RequestContext(limit=5))
        keys = {
            request_key("x://p", base),
            request_key("x://p", other),
            request_key("x://p", limited),
        }
        assert len(keys) == 3

    def test_endpoint_participates(self):
        request = ProviderRequest()
        assert request_key("x://p", request) != request_key("x://q", request)


class TestCache:
    def test_second_fetch_is_a_hit(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        request = ProviderRequest()
        first = engine.fetch("x://count", request)
        second = engine.fetch("x://count", request)
        assert endpoint.calls == 1
        assert first.artifact_ids() == second.artifact_ids()
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 1

    def test_distinct_requests_both_fetch(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch(
            "x://count", ProviderRequest(context=RequestContext(limit=99))
        )
        assert endpoint.calls == 2

    def test_ttl_expiry(self, counting_registry):
        registry, endpoint = counting_registry
        fake_now = [0.0]
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(cache_ttl_s=10.0),
            timer=lambda: fake_now[0],
        )
        engine.fetch("x://count", ProviderRequest())
        fake_now[0] = 5.0
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        fake_now[0] = 11.0
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_ttl_zero_disables_caching(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0)
        )
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2
        assert engine.cache_size == 0

    def test_lru_bound(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(cache_max_entries=3),
        )
        for limit in range(1, 6):
            engine.fetch(
                "x://count",
                ProviderRequest(context=RequestContext(limit=limit)),
            )
        assert engine.cache_size == 3

    def test_explicit_invalidation(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.invalidate()
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_per_endpoint_invalidation(self, counting_registry):
        registry, endpoint = counting_registry
        other = CountingEndpoint(ids=("b-1",))
        registry.register("x://other", other)
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://other", ProviderRequest())
        engine.invalidate("x://other")
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://other", ProviderRequest())
        assert endpoint.calls == 1
        assert other.calls == 2

    def test_errors_are_not_cached(self):
        registry = EndpointRegistry()
        inner = CountingEndpoint()
        flaky = FlakyEndpoint(inner, fail_on={1}, name="flaky")
        registry.register("x://flaky", flaky)
        engine = ExecutionEngine(registry)
        with pytest.raises(ProviderError):
            engine.fetch("x://flaky", ProviderRequest())
        result = engine.fetch("x://flaky", ProviderRequest())
        assert result.artifact_ids() == ["a-1", "a-2"]


class TestInvalidationOnMutation:
    def test_catalog_mutation_flushes_cache(self, tiny_store):
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        registry.register("x://count", endpoint)
        engine = ExecutionEngine(registry, store=tiny_store)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        tiny_store.grant_badge("t-web", "endorsed", "u-ann")
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_usage_event_flushes_cache(self, tiny_store):
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        registry.register("x://count", endpoint)
        engine = ExecutionEngine(registry, store=tiny_store)
        engine.fetch("x://count", ProviderRequest())
        tiny_store.record("t-orders", "u-bob", "view")
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2

    def test_registry_swap_flushes_cache(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        healed = CountingEndpoint(ids=("z-9",))
        registry.register("x://count", healed, replace=True)
        result = engine.fetch("x://count", ProviderRequest())
        assert result.artifact_ids() == ["z-9"]

    def test_spec_swap_invalidates(self, tiny_app):
        user = "u-ann"
        tiny_app.interface.overview_tabs(user_id=user)
        assert tiny_app.engine.cache_size > 0
        tiny_app.update_spec(tiny_app.spec)
        assert tiny_app.engine.cache_size == 0
        # stats survive the swap — the engine is shared across versions
        assert tiny_app.stats.total_calls > 0


class TestScope:
    def test_scope_memoises_even_without_cache(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0)
        )
        with engine.scope():
            engine.fetch("x://count", ProviderRequest())
            engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 2  # memo died with the scope


class TestFetchMany:
    def test_results_align_with_input_order(self):
        registry = EndpointRegistry()
        for name in ("alpha", "beta", "gamma"):
            registry.register(
                f"x://{name}", CountingEndpoint(ids=(f"{name}-1",))
            )
        engine = ExecutionEngine(registry)
        calls = [
            ("x://gamma", ProviderRequest()),
            ("x://alpha", ProviderRequest()),
            ("x://beta", ProviderRequest()),
        ]
        outcomes = engine.fetch_many(calls)
        assert [o.endpoint for o in outcomes] == [
            "x://gamma", "x://alpha", "x://beta",
        ]
        assert [o.result.artifact_ids() for o in outcomes] == [
            ["gamma-1"], ["alpha-1"], ["beta-1"],
        ]

    def test_ordering_is_deterministic_across_runs(self):
        registry = EndpointRegistry()
        for index in range(12):
            registry.register(
                f"x://p{index}", CountingEndpoint(ids=(f"id-{index}",))
            )
        engine = ExecutionEngine(registry)
        calls = [(f"x://p{index}", ProviderRequest()) for index in range(12)]
        first = [o.result.artifact_ids() for o in engine.fetch_many(calls)]
        engine.invalidate()
        second = [o.result.artifact_ids() for o in engine.fetch_many(calls)]
        assert first == second

    def test_duplicates_fetch_once(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy.defaults().replace(cache_ttl_s=0)
        )
        outcomes = engine.fetch_many(
            [("x://count", ProviderRequest())] * 4
        )
        assert endpoint.calls == 1
        assert all(o.ok for o in outcomes)

    def test_fault_containment(self, counting_registry):
        registry, _ = counting_registry
        registry.register(
            "x://broken",
            FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                          name="broken"),
        )
        engine = ExecutionEngine(registry)
        outcomes = engine.fetch_many([
            ("x://count", ProviderRequest()),
            ("x://broken", ProviderRequest()),
            ("x://count", ProviderRequest(context=RequestContext(limit=3))),
        ])
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, ProviderError)
        assert engine.stats.total_errors == 1

    def test_actually_runs_on_threads(self):
        registry = EndpointRegistry()
        seen_threads = set()

        def make_endpoint(name):
            def endpoint(request):
                seen_threads.add(threading.current_thread().name)
                return list_result([ScoredArtifact(name)])
            return endpoint

        for index in range(6):
            registry.register(f"x://t{index}", make_endpoint(f"id-{index}"))
        engine = ExecutionEngine(registry)
        engine.fetch_many(
            [(f"x://t{index}", ProviderRequest()) for index in range(6)]
        )
        assert any(t.startswith("humboldt-exec") for t in seen_threads)

    def test_serial_when_one_worker(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy.defaults().replace(max_workers=1)
        )
        outcomes = engine.fetch_many([
            ("x://count", ProviderRequest()),
            ("x://count", ProviderRequest(context=RequestContext(limit=3))),
        ])
        assert all(o.ok for o in outcomes)
        assert endpoint.calls == 2


class TestRetryMiddleware:
    def test_transient_outage_retried(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1}, name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=3, backoff_base_ms=10
            ),
            sleep=sleeps.append,
        )
        result = engine.fetch("x://flaky", ProviderRequest())
        assert result.artifact_ids() == ["a-1", "a-2"]
        assert flaky.calls == 2
        assert engine.stats.total_retries == 1
        assert sleeps == [0.01]

    def test_backoff_doubles(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1, 2}, name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=3, backoff_base_ms=10
            ),
            sleep=sleeps.append,
        )
        engine.fetch("x://flaky", ProviderRequest())
        assert sleeps == [0.01, 0.02]

    def test_attempts_exhausted_raises(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                              name="flaky")
        registry.register("x://flaky", flaky)
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=3, backoff_base_ms=0
            ),
            sleep=lambda s: None,
        )
        with pytest.raises(ProviderError):
            engine.fetch("x://flaky", ProviderRequest())
        assert flaky.calls == 3
        assert engine.stats.total_retries == 2

    def test_timeout_is_retried(self, tiny_registry):
        original = tiny_registry.resolve("catalog://newest")
        slow = SlowEndpoint(original, latency_ms=60, budget_ms=100,
                            name="newest")
        tiny_registry.register("catalog://newest", slow, replace=True)
        engine = ExecutionEngine(
            tiny_registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=2, backoff_base_ms=0
            ),
            sleep=lambda s: None,
        )
        engine.fetch("catalog://newest", ProviderRequest())  # 60ms spent
        # second call times out (60 > 40 remaining) and the retry also
        # times out: ProviderTimeoutError surfaces after both attempts
        with pytest.raises(ProviderTimeoutError):
            engine.fetch(
                "catalog://newest",
                ProviderRequest(context=RequestContext(limit=5)),
            )
        assert slow.timed_out == 2

    def test_missing_input_not_retried(self, tiny_registry):
        engine = ExecutionEngine(
            tiny_registry,
            policy=ExecutionPolicy.defaults().replace(attempts=5),
        )
        with pytest.raises(MissingInputError):
            engine.fetch("catalog://owned_by", ProviderRequest())
        assert engine.stats.total_retries == 0

    def test_wrong_shape_not_retried(self):
        registry = EndpointRegistry()
        calls = []

        def wrong_shape(request):
            calls.append(1)
            return ProviderResult(
                representation=Representation.GRAPH,
                items=(ScoredArtifact("a-1"),),
            )

        registry.register("x://wrong", wrong_shape)
        engine = ExecutionEngine(
            registry, policy=ExecutionPolicy.defaults().replace(attempts=5)
        )
        with pytest.raises(RepresentationError):
            engine.fetch("x://wrong", ProviderRequest())
        assert len(calls) == 1

    def test_is_transient_classification(self):
        assert is_transient(ProviderError("p", "outage"))
        assert is_transient(ProviderTimeoutError("p", "timeout"))
        assert not is_transient(MissingInputError("p", "user"))
        assert not is_transient(RepresentationError("p", "bad shape"))
        assert not is_transient(ValueError("not a provider error"))


class TestStats:
    def test_latency_percentiles_present(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.snapshot()
        latency = snap["endpoints"]["x://count"]["latency_ms"]
        assert set(latency) == {"mean", "p50", "p95", "p99", "max"}
        assert latency["max"] >= latency["p50"] >= 0.0

    def test_render_is_a_table(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.fetch("x://count", ProviderRequest())
        text = engine.stats.render()
        assert "x://count" in text
        assert "TOTAL" in text

    def test_truncation_recorded_when_limit_filled(self):
        registry = EndpointRegistry()
        registry.register("x://big", CountingEndpoint(ids=("a", "b", "c")))
        engine = ExecutionEngine(registry)
        engine.fetch(
            "x://big", ProviderRequest(context=RequestContext(limit=3))
        )
        assert engine.stats.endpoint("x://big").truncations == 1
        assert engine.stats.truncations == 1

    def test_reset(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        engine.stats.reset()
        assert engine.stats.total_calls == 0


class TestEndToEndDeduplication:
    """The acceptance bar: unchanged catalog ⇒ zero duplicate fetches."""

    def test_repeated_overview_zero_duplicate_invocations(self, tiny_app):
        tiny_app.interface.overview_tabs(user_id="u-ann")
        calls_after_first = tiny_app.stats.total_calls
        assert calls_after_first > 0
        second = tiny_app.interface.overview_tabs(user_id="u-ann")
        assert tiny_app.stats.total_calls == calls_after_first
        assert [t.provider_name for t in second]  # still fully generated

    def test_repeated_query_zero_duplicate_invocations(self, tiny_app):
        first = tiny_app.interface.search("badged: endorsed & type: table")
        calls_after_first = tiny_app.stats.total_calls
        second = tiny_app.interface.search("badged: endorsed & type: table")
        assert tiny_app.stats.total_calls == calls_after_first
        assert first[0].artifact_ids() == second[0].artifact_ids()

    def test_duplicate_subquery_fetches_once_within_search(self, tiny_app):
        tiny_app.interface.search("badged: endorsed | badged: endorsed")
        endpoint_stats = tiny_app.stats.endpoint("catalog://badged")
        assert endpoint_stats.calls == 1

    def test_mutation_invalidates_between_overviews(self, tiny_app):
        tiny_app.interface.overview_tabs(user_id="u-ann")
        calls_after_first = tiny_app.stats.total_calls
        tiny_app.store.grant_badge("t-web", "endorsed", "u-ann")
        tiny_app.interface.overview_tabs(user_id="u-ann")
        assert tiny_app.stats.total_calls > calls_after_first

    def test_parallel_overview_matches_serial_content(self, tiny_store):
        """Parallel fan-out must not change what the UI shows: a serial
        engine (one worker) and the default parallel one generate
        identical tabs."""
        parallel_app = WorkbookApp(tiny_store)
        serial_app = WorkbookApp(tiny_store)
        serial_app.interface.engine.policy = (
            ExecutionPolicy.defaults().replace(max_workers=1)
        )
        parallel = [
            (tab.provider_name, tab.view.artifact_ids())
            for tab in parallel_app.interface.overview_tabs(user_id="u-ann")
        ]
        serial = [
            (tab.provider_name, tab.view.artifact_ids())
            for tab in serial_app.interface.overview_tabs(user_id="u-ann")
        ]
        assert parallel == serial
        assert parallel  # non-degenerate


class TestSearchTruncationSignal:
    def test_truncated_flag_set_when_limit_filled(self, tiny_app):
        evaluator = tiny_app.interface.evaluator
        original = evaluator.fetch_limit
        try:
            evaluator.fetch_limit = 2
            result = tiny_app.interface.search("type: table")[0]
            assert result.truncated
            assert tiny_app.stats.truncations > 0
        finally:
            evaluator.fetch_limit = original

    def test_not_truncated_by_default(self, tiny_app):
        result = tiny_app.interface.search("type: table")[0]
        assert not result.truncated


class TestIsEmptyRegression:
    def test_graph_with_edges_is_not_empty(self):
        """A nodes+edges graph where only ``nodes`` was checked used to be
        inconsistent with ``validate``; edges now count as payload."""
        from repro.providers.base import GraphEdge

        result = ProviderResult(
            representation=Representation.GRAPH,
            nodes=("a", "b"),
            edges=(GraphEdge("a", "b", "joins"),),
        )
        assert not result.is_empty()
        assert result.payload_size() == 2

    def test_empty_graph_is_empty(self):
        result = ProviderResult(representation=Representation.GRAPH)
        assert result.is_empty()

    def test_list_payload_size(self):
        result = list_result([ScoredArtifact("a"), ScoredArtifact("b")])
        assert not result.is_empty()
        assert result.payload_size() == 2


class TestTokenCache:
    def test_cached_tokens_match_fresh_tokenize(self, tiny_store):
        from repro.util.textutil import tokenize

        artifact = tiny_store.artifact("t-orders")
        name_tokens, text_tokens = tiny_store.artifact_tokens("t-orders")
        assert name_tokens == frozenset(tokenize(artifact.name))
        assert text_tokens == frozenset(tokenize(artifact.searchable_text()))
        # second call returns the memo (same object)
        again = tiny_store.artifact_tokens("t-orders")
        assert again[0] is name_tokens

    def test_mutation_invalidates_token_cache(self, tiny_store):
        from repro.util.textutil import tokenize

        before = tiny_store.artifact_tokens("t-orders")
        tiny_store.grant_badge("t-orders", "golden", "u-ann")
        after = tiny_store.artifact_tokens("t-orders")
        # the memo entry was dropped and rebuilt from the new revision
        assert after[0] is not before[0]
        fresh = tiny_store.artifact("t-orders")
        assert after[1] == frozenset(tokenize(fresh.searchable_text()))

    def test_version_counter_monotonic(self, tiny_store):
        before = tiny_store.version
        tiny_store.add_user(User(id="u-new", name="New User"))
        tiny_store.add_artifact(
            Artifact(id="a-new", name="NEW_TABLE", artifact_type="table",
                     owner_id="u-new", created_at=1.0)
        )
        tiny_store.record("a-new", "u-new", "view")
        assert tiny_store.version == before + 3


class TestStatsSnapshotImmutability:
    """``ExecutionStats.endpoint`` hands out a frozen snapshot, not the
    live mutable record (callers used to be able to corrupt counters)."""

    def test_snapshot_is_detached_from_later_activity(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        assert snap.calls == 1
        engine.fetch("x://count", ProviderRequest(
            context=RequestContext(limit=3)
        ))
        assert snap.calls == 1  # not a live view
        assert engine.stats.endpoint("x://count").calls == 2

    def test_snapshot_rejects_mutation(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        with pytest.raises(AttributeError):
            snap.calls = 99
        assert engine.stats.endpoint("x://count").calls == 1

    def test_snapshot_latencies_are_a_tuple_copy(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        snap = engine.stats.endpoint("x://count")
        assert isinstance(snap.latencies_ms, tuple)
        assert len(snap.latencies_ms) == 1
        summary = snap.latency_summary()
        assert summary["max"] >= summary["p50"] >= 0.0

    def test_unknown_endpoint_snapshot_is_zeroed(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        snap = engine.stats.endpoint("x://never-fetched")
        assert snap.calls == 0 and snap.latencies_ms == ()


class TestBatchDedupCounting:
    """In-batch duplicates of a *pending miss* are dedups, not cache
    hits — counting them as hits used to inflate cache_hit_rate."""

    def test_duplicate_of_pending_miss_counts_as_dedup(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch_many([("x://count", ProviderRequest())] * 3)
        assert endpoint.calls == 1
        assert engine.stats.cache_misses == 1
        assert engine.stats.cache_hits == 0
        assert engine.stats.dedups == 2
        assert engine.stats.endpoint("x://count").dedups == 2

    def test_duplicate_of_cached_hit_still_counts_as_hit(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())  # prime the cache
        engine.fetch_many([("x://count", ProviderRequest())] * 2)
        assert endpoint.calls == 1
        assert engine.stats.cache_hits == 2
        assert engine.stats.dedups == 0

    def test_hit_rate_unpolluted_by_batch_duplicates(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch_many([("x://count", ProviderRequest())] * 10)
        assert engine.stats.cache_hit_rate == 0.0


def _exec_threads():
    """Live executor thread *objects* (names repeat across pools)."""
    return {
        t for t in threading.enumerate()
        if t.name.startswith("humboldt-exec")
    }


class TestEngineLifecycle:
    def test_close_joins_worker_threads(self):
        registry = EndpointRegistry()
        for index in range(4):
            registry.register(f"x://t{index}", CountingEndpoint())
        before = _exec_threads()
        engine = ExecutionEngine(registry)
        engine.fetch_many(
            [(f"x://t{index}", ProviderRequest()) for index in range(4)]
        )
        spawned = _exec_threads() - before
        assert spawned  # pool actually spun up
        engine.close()
        assert all(not t.is_alive() for t in spawned)

    def test_close_is_idempotent_and_allows_reuse(self, counting_registry):
        registry, endpoint = counting_registry
        engine = ExecutionEngine(registry)
        engine.close()
        engine.close()
        # fetches after close still work (pool recreated on demand)
        engine.fetch("x://count", ProviderRequest())
        assert endpoint.calls == 1
        engine.close()

    def test_context_manager_closes(self):
        registry = EndpointRegistry()
        for index in range(4):
            registry.register(f"x://t{index}", CountingEndpoint())
        before = _exec_threads()
        with ExecutionEngine(registry) as engine:
            engine.fetch_many(
                [(f"x://t{index}", ProviderRequest()) for index in range(4)]
            )
        assert all(not t.is_alive() for t in _exec_threads() - before)

    def test_workbook_app_context_manager_closes_engine(self, tiny_store):
        before = _exec_threads()
        with WorkbookApp(tiny_store) as app:
            app.interface.overview_tabs(user_id="u-ann")
        assert all(not t.is_alive() for t in _exec_threads() - before)


def _clock_engine(registry, policy=None):
    """An engine whose time only moves when an endpoint/backoff says so."""
    clock = SimulationClock()
    engine = ExecutionEngine(registry, policy=policy, clock=clock)
    return engine, clock


class TestRemovedFlatPolicyConstructor:
    """The legacy flat ExecutionPolicy(...) constructor shim is gone:
    flat kwargs raise TypeError with the replace(...) migration hint."""

    def test_flat_kwargs_raise_with_migration_hint(self):
        with pytest.raises(TypeError, match=r"removed.*replace\("):
            ExecutionPolicy(attempts=3, cache_ttl_s=60.0)

    def test_migration_hint_names_the_offending_knobs(self):
        with pytest.raises(
            TypeError, match=r"attempts=\.\.\., cache_ttl_s=\.\.\."
        ):
            ExecutionPolicy(attempts=3, cache_ttl_s=60.0)

    def test_unknown_flat_kwarg_still_named_unknown(self):
        with pytest.raises(TypeError, match="unknown ExecutionPolicy knob"):
            ExecutionPolicy(atempts=3)

    def test_layered_spelling_replaces_the_shim(self):
        policy = ExecutionPolicy.defaults().replace(
            attempts=3, cache_ttl_s=60.0
        )
        assert policy.retry.attempts == 3
        assert policy.cache.ttl_s == 60.0

    def test_read_through_properties_survive_the_removal(self):
        policy = ExecutionPolicy.defaults().replace(
            attempts=4, backoff_base_ms=7.0, cache_max_entries=11
        )
        assert policy.attempts == 4
        assert policy.backoff_base_ms == 7.0
        assert policy.cache_max_entries == 11
        assert policy.cache_ttl_s == CachePolicy().ttl_s

    def test_canonical_construction_does_not_warn(self, recwarn):
        ExecutionPolicy.defaults().replace(
            retry=RetryPolicy(attempts=2), cache_ttl_s=5.0
        )
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_fetch_still_raises_through(self, counting_registry):
        registry, _ = counting_registry
        registry.register(
            "x://down",
            FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                          name="down"),
        )
        engine = ExecutionEngine(registry)
        result = engine.fetch("x://count", ProviderRequest())
        assert result.artifact_ids() == ["a-1", "a-2"]
        with pytest.raises(ProviderError):
            engine.fetch("x://down", ProviderRequest())

    def test_no_flat_construction_left_anywhere(self):
        """No module under src/ (execution.py aside) spells the removed
        positional/flat form; everything goes through defaults().replace."""
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = [
            str(path)
            for path in src.rglob("*.py")
            if path.name != "execution.py"
            and "ExecutionPolicy(" in path.read_text(encoding="utf-8")
        ]
        assert offenders == []

    def test_no_deprecation_shim_left_in_execution_module(self):
        """The shim's DeprecationWarning machinery is fully removed."""
        import repro.providers.execution as execution

        source = Path(execution.__file__).read_text(encoding="utf-8")
        assert "DeprecationWarning" not in source
        assert "import warnings" not in source


class TestLayeredPolicyApi:
    def test_defaults_is_a_shared_singleton(self):
        assert ExecutionPolicy.defaults() is ExecutionPolicy.defaults()

    def test_replace_accepts_groups_and_flat_knobs(self):
        by_group = ExecutionPolicy.defaults().replace(
            retry=RetryPolicy(attempts=4)
        )
        by_knob = ExecutionPolicy.defaults().replace(attempts=4)
        assert by_group == by_knob
        assert by_knob.retry.backoff_base_ms == RetryPolicy().backoff_base_ms

    def test_replace_returns_new_frozen_instance(self):
        base = ExecutionPolicy.defaults()
        changed = base.replace(cache_ttl_s=1.0)
        assert changed is not base
        assert base.cache.ttl_s == CachePolicy().ttl_s
        with pytest.raises(dataclasses.FrozenInstanceError):
            changed.max_workers = 2

    def test_for_endpoint_overrides_only_that_endpoint(self):
        policy = ExecutionPolicy.defaults().for_endpoint(
            "x://a", attempts=7, breaker_failure_threshold=2
        )
        assert policy.effective("x://a").attempts == 7
        assert policy.effective("x://a").breaker_failure_threshold == 2
        assert policy.effective("x://b") == ExecutionPolicy.defaults().effective(
            "x://b"
        )

    def test_for_endpoint_merges_repeated_calls(self):
        policy = (
            ExecutionPolicy.defaults()
            .for_endpoint("x://a", attempts=7)
            .for_endpoint("x://a", attempts=9, cache_ttl_s=1.0)
        )
        effective = policy.effective("x://a")
        assert effective.attempts == 9
        assert effective.cache_ttl_s == 1.0

    def test_for_endpoint_rejects_engine_wide_knobs(self):
        with pytest.raises(TypeError, match="engine-wide"):
            ExecutionPolicy.defaults().for_endpoint("x://a", max_workers=2)
        with pytest.raises(TypeError, match="engine-wide"):
            ExecutionPolicy.defaults().for_endpoint("x://a",
                                                    cache_max_entries=9)
        with pytest.raises(TypeError, match="unknown policy knob"):
            ExecutionPolicy.defaults().for_endpoint("x://a", nope=1)

    def test_group_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_jitter=2.0)
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)


class TestCircuitBreaker:
    """The breaker state machine, driven by a simulation clock."""

    def _registry(self, fail_count=100):
        registry = EndpointRegistry()
        inner = CountingEndpoint()
        failing = FailNTimesEndpoint(inner, fail_count=fail_count,
                                     name="fail-n")
        registry.register("x://shaky", failing)
        return registry, failing

    def _policy(self, **knobs):
        return ExecutionPolicy.defaults().replace(
            cache_ttl_s=0
        ).for_endpoint("x://shaky", breaker_failure_threshold=3, **knobs)

    def test_opens_after_consecutive_failures(self):
        registry, failing = self._registry()
        engine, _ = _clock_engine(registry, self._policy())
        for _ in range(3):
            outcome = engine.execute("x://shaky", ProviderRequest())
            assert outcome.status is FetchStatus.ERROR
        assert engine.breaker_state("x://shaky") is BreakerState.OPEN
        assert engine.stats.breaker_opens == 1

    def test_open_breaker_skips_without_invoking(self):
        registry, failing = self._registry()
        engine, _ = _clock_engine(registry, self._policy())
        for _ in range(3):
            engine.execute("x://shaky", ProviderRequest())
        outcome = engine.execute("x://shaky", ProviderRequest())
        assert outcome.skipped and not outcome.ok
        assert isinstance(outcome.error, CircuitOpenError)
        assert failing.calls == 3  # the rejected fetch never ran
        assert engine.stats.breaker_rejections == 1

    def test_half_open_probe_success_closes(self):
        registry, failing = self._registry(fail_count=3)
        engine, clock = _clock_engine(registry, self._policy())
        for _ in range(3):
            engine.execute("x://shaky", ProviderRequest())
        assert engine.breaker_state("x://shaky") is BreakerState.OPEN
        clock.advance(seconds=BreakerPolicy().reset_timeout_s + 1)
        outcome = engine.execute("x://shaky", ProviderRequest())
        assert outcome.fresh  # the endpoint recovered on call 4
        assert engine.breaker_state("x://shaky") is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        registry, failing = self._registry(fail_count=100)
        engine, clock = _clock_engine(registry, self._policy())
        for _ in range(3):
            engine.execute("x://shaky", ProviderRequest())
        clock.advance(seconds=BreakerPolicy().reset_timeout_s + 1)
        probe = engine.execute("x://shaky", ProviderRequest())
        assert probe.status is FetchStatus.ERROR  # probe ran and failed
        assert engine.breaker_state("x://shaky") is BreakerState.OPEN
        rejected = engine.execute("x://shaky", ProviderRequest())
        assert rejected.skipped
        assert failing.calls == 4
        assert engine.stats.breaker_opens == 2

    def test_success_resets_failure_streak(self):
        registry = EndpointRegistry()
        inner = CountingEndpoint()
        # fail, fail, succeed, repeatedly: never 3 consecutive failures
        flaky = FlakyEndpoint(inner, fail_on=lambda i: i % 3 != 0,
                              name="flaky")
        registry.register("x://shaky", flaky)
        engine, _ = _clock_engine(registry, self._policy())
        for _ in range(9):
            engine.execute("x://shaky", ProviderRequest())
        assert engine.breaker_state("x://shaky") is BreakerState.CLOSED
        assert engine.stats.breaker_rejections == 0

    def test_disabled_breaker_never_rejects(self):
        registry, failing = self._registry()
        engine, _ = _clock_engine(
            registry, self._policy(breaker_enabled=False)
        )
        for _ in range(10):
            outcome = engine.execute("x://shaky", ProviderRequest())
            assert outcome.status is FetchStatus.ERROR
        assert failing.calls == 10
        assert engine.breaker_state("x://shaky") is BreakerState.CLOSED

    def test_policy_swap_resets_breakers(self):
        registry, failing = self._registry()
        engine, _ = _clock_engine(registry, self._policy())
        for _ in range(3):
            engine.execute("x://shaky", ProviderRequest())
        assert engine.breaker_state("x://shaky") is BreakerState.OPEN
        engine.policy = engine.policy.replace(attempts=1)
        assert engine.breaker_state("x://shaky") is BreakerState.CLOSED


class TestStaleWhileRevalidate:
    def _warmed_engine(self, policy=None):
        """Engine + clock with x://wobbly warmed once, then failing."""
        registry = EndpointRegistry()
        wobbly = FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: i > 1,
                               name="wobbly")
        registry.register("x://wobbly", wobbly)
        policy = policy or ExecutionPolicy.defaults().for_endpoint(
            "x://wobbly", breaker_failure_threshold=3
        )
        engine, clock = _clock_engine(registry, policy)
        assert engine.execute("x://wobbly", ProviderRequest()).fresh
        return engine, clock, wobbly

    def test_open_breaker_serves_marked_stale(self):
        engine, clock, wobbly = self._warmed_engine()
        clock.advance(seconds=CachePolicy().ttl_s + 1)  # expire, in grace
        for _ in range(3):
            assert engine.execute(
                "x://wobbly", ProviderRequest()
            ).status is FetchStatus.ERROR
        outcome = engine.execute("x://wobbly", ProviderRequest())
        assert outcome.stale and outcome.ok and outcome.degraded
        assert outcome.result.artifact_ids() == ["a-1", "a-2"]
        assert "circuit open" in outcome.reason
        assert "past TTL" in outcome.reason
        assert engine.stats.stale_served == 1
        assert wobbly.calls == 4  # stale serve did not invoke

    def test_exhausted_deadline_serves_marked_stale(self):
        engine, clock, wobbly = self._warmed_engine()
        clock.advance(seconds=CachePolicy().ttl_s + 1)
        deadline = engine.deadline(budget_ms=50.0)
        clock.advance(seconds=1.0)  # spend the whole budget
        outcome = engine.execute(
            "x://wobbly", ProviderRequest(), deadline=deadline
        )
        assert outcome.stale
        assert "deadline exhausted" in outcome.reason
        assert engine.stats.deadline_skips == 1
        assert wobbly.calls == 1

    def test_no_fallback_past_grace_period(self):
        engine, clock, wobbly = self._warmed_engine()
        clock.advance(
            seconds=CachePolicy().ttl_s + CachePolicy().stale_grace_s + 1
        )
        for _ in range(3):
            engine.execute("x://wobbly", ProviderRequest())
        outcome = engine.execute("x://wobbly", ProviderRequest())
        assert outcome.skipped and outcome.result is None
        assert isinstance(outcome.error, CircuitOpenError)

    def test_serve_stale_can_be_disabled(self):
        policy = ExecutionPolicy.defaults().replace(
            serve_stale=False
        ).for_endpoint("x://wobbly", breaker_failure_threshold=3)
        engine, clock, _ = self._warmed_engine(policy)
        clock.advance(seconds=CachePolicy().ttl_s + 1)
        for _ in range(3):
            engine.execute("x://wobbly", ProviderRequest())
        outcome = engine.execute("x://wobbly", ProviderRequest())
        assert outcome.skipped and outcome.result is None

    def test_stale_result_is_not_rememoised_as_fresh(self):
        engine, clock, wobbly = self._warmed_engine()
        clock.advance(seconds=CachePolicy().ttl_s + 1)
        for _ in range(3):
            engine.execute("x://wobbly", ProviderRequest())
        assert engine.execute("x://wobbly", ProviderRequest()).stale
        # still stale on the next serve — the grace entry did not get a
        # fresh TTL stamped by being served
        assert engine.execute("x://wobbly", ProviderRequest()).stale
        assert engine.stats.stale_served == 2

    def test_fresh_hit_ignores_deadline(self):
        engine, clock, wobbly = self._warmed_engine()
        deadline = engine.deadline(budget_ms=10.0)
        clock.advance(seconds=5.0)  # deadline spent, entry still fresh
        outcome = engine.execute(
            "x://wobbly", ProviderRequest(), deadline=deadline
        )
        assert outcome.fresh
        assert wobbly.calls == 1


class TestDeadlineBudget:
    def test_no_budget_means_no_deadline(self, counting_registry):
        registry, _ = counting_registry
        engine, _ = _clock_engine(registry)
        assert engine.deadline() is None
        assert engine.deadline(0) is None
        assert engine.deadline(-5) is None

    def test_default_budget_comes_from_policy(self, counting_registry):
        registry, _ = counting_registry
        engine, _ = _clock_engine(
            registry,
            ExecutionPolicy.defaults().replace(deadline_budget_ms=80.0),
        )
        deadline = engine.deadline()
        assert deadline is not None and deadline.budget_ms == 80.0

    def test_expired_deadline_skips_without_invoking(self, counting_registry):
        registry, endpoint = counting_registry
        engine, clock = _clock_engine(registry)
        deadline = engine.deadline(budget_ms=50.0)
        clock.advance(seconds=0.1)
        outcome = engine.execute(
            "x://count", ProviderRequest(), deadline=deadline
        )
        assert outcome.skipped
        assert isinstance(outcome.error, DeadlineExceededError)
        assert endpoint.calls == 0
        assert engine.stats.deadline_skips == 1

    def test_batch_stops_attempting_once_budget_spent(self):
        registry = EndpointRegistry()
        clock = SimulationClock()
        endpoints = []
        for index in range(3):
            endpoint = FlakyEndpoint(CountingEndpoint(ids=(f"id-{index}",)),
                                     fail_on=set())
            # each call costs 100ms of simulated time
            from repro.providers.faults import LatencySpikeEndpoint

            spiky = LatencySpikeEndpoint(endpoint, clock, [100.0])
            registry.register(f"x://p{index}", spiky)
            endpoints.append(spiky)
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(max_workers=1),
            clock=clock,
        )
        deadline = engine.deadline(budget_ms=150.0)
        outcomes = engine.execute_many(
            [(f"x://p{index}", ProviderRequest()) for index in range(3)],
            deadline=deadline,
        )
        assert [o.status for o in outcomes] == [
            FetchStatus.OK, FetchStatus.OK, FetchStatus.SKIPPED,
        ]
        assert endpoints[2].calls == 0

    def test_retry_stops_at_the_deadline(self):
        registry = EndpointRegistry()
        clock = SimulationClock()

        class CostlyFailure:
            calls = 0

            def __call__(self, request):
                self.calls += 1
                clock.advance(seconds=0.08)  # each attempt costs 80ms
                raise ProviderError("costly", "always down")

        costly = CostlyFailure()
        registry.register("x://costly", costly)
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=5, backoff_base_ms=100.0
            ),
            clock=clock,
        )
        deadline = engine.deadline(budget_ms=150.0)
        outcome = engine.execute(
            "x://costly", ProviderRequest(), deadline=deadline
        )
        assert outcome.status is FetchStatus.ERROR
        # attempt 1 at 80ms; backoff capped to the 70ms remaining; attempt
        # 2 at 230ms is past the deadline, so attempts 3-5 never happen
        assert costly.calls == 2

    def test_backoff_sleep_capped_to_remaining_budget(self):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1}, name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        clock = SimulationClock()
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=3, backoff_base_ms=500.0
            ),
            timer=clock.now,
            sleep=lambda s: (sleeps.append(s), clock.advance(seconds=s)),
        )
        deadline = engine.deadline(budget_ms=200.0)
        outcome = engine.execute(
            "x://flaky", ProviderRequest(), deadline=deadline
        )
        assert outcome.fresh
        assert sleeps == [pytest.approx(0.2)]  # 500ms desire, 200ms budget


class TestRetryJitter:
    def _sleeps(self, jitter):
        registry = EndpointRegistry()
        flaky = FlakyEndpoint(CountingEndpoint(), fail_on={1, 2},
                              name="flaky")
        registry.register("x://flaky", flaky)
        sleeps = []
        engine = ExecutionEngine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=3, backoff_base_ms=100.0, backoff_jitter=jitter
            ),
            sleep=sleeps.append,
        )
        engine.fetch("x://flaky", ProviderRequest())
        return sleeps

    def test_jitter_perturbs_the_schedule(self):
        plain = self._sleeps(0.0)
        jittered = self._sleeps(0.5)
        assert plain == [0.1, 0.2]
        assert jittered != plain
        # bounded by d * (1 ± jitter)
        assert 0.05 <= jittered[0] <= 0.15
        assert 0.10 <= jittered[1] <= 0.30

    def test_jitter_is_deterministic_across_runs(self):
        assert self._sleeps(0.5) == self._sleeps(0.5)


class TestHealthSurface:
    def test_health_reports_breaker_and_counters(self):
        registry = EndpointRegistry()
        registry.register(
            "x://down",
            FlakyEndpoint(CountingEndpoint(), fail_on=lambda i: True,
                          name="down"),
        )
        engine, _ = _clock_engine(
            registry,
            ExecutionPolicy.defaults().for_endpoint(
                "x://down", breaker_failure_threshold=2
            ),
        )
        for _ in range(3):
            engine.execute("x://down", ProviderRequest())
        health = engine.health()
        entry = health["x://down"]
        assert entry["breaker"] == "open"
        assert entry["breaker_rejections"] == 1
        text = engine.render_health()
        assert "x://down" in text and "open" in text

    def test_stats_render_includes_resilience_columns(self, counting_registry):
        registry, _ = counting_registry
        engine = ExecutionEngine(registry)
        engine.fetch("x://count", ProviderRequest())
        text = engine.stats.render()
        assert "stale" in text and "dskip" in text and "brej" in text
