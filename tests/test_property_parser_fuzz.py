"""Fuzz tests: the query front end never fails with anything but its own
typed errors, for arbitrary printable input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query.lexer import tokenize_query
from repro.core.query.nlq import NaturalLanguageTranslator
from repro.core.query.parser import parse_query
from repro.errors import QueryCompileError, QuerySyntaxError
from repro.providers.suite import default_spec
from repro.core.query.language import QueryLanguage
from repro.core.query.autocomplete import Autocompleter
from tests.conftest import build_tiny_store

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=0x2FFF),
    max_size=60,
)

_STORE = build_tiny_store()
_LANGUAGE = QueryLanguage(default_spec())
_COMPLETER = Autocompleter(_LANGUAGE, _STORE)
_TRANSLATOR = NaturalLanguageTranslator(_LANGUAGE, _STORE)


class TestFrontEndFuzz:
    @given(text=printable)
    @settings(max_examples=300, deadline=None)
    def test_lexer_total(self, text):
        try:
            tokens = tokenize_query(text)
        except QuerySyntaxError:
            return
        assert tokens[-1].kind == "EOF"

    @given(text=printable)
    @settings(max_examples=300, deadline=None)
    def test_parser_total(self, text):
        try:
            node = parse_query(text)
        except QuerySyntaxError:
            return
        # anything that parses must render and re-parse
        assert parse_query(node.to_text()) is not None

    @given(text=printable)
    @settings(max_examples=200, deadline=None)
    def test_autocomplete_never_raises(self, text):
        suggestions = _COMPLETER.suggest(text)
        assert isinstance(suggestions, list)

    @given(text=printable)
    @settings(max_examples=200, deadline=None)
    def test_compiler_only_typed_errors(self, text):
        try:
            node = parse_query(text)
        except QuerySyntaxError:
            return
        try:
            _LANGUAGE.compile(node)
        except QueryCompileError:
            pass  # unknown fields etc. — the expected failure mode

    @given(text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=127),
        max_size=50,
    ))
    @settings(max_examples=200, deadline=None)
    def test_nl_translator_total(self, text):
        try:
            translation = _TRANSLATOR.translate(text)
        except QueryCompileError:
            return  # nothing extractable — fine
        # whatever it produced must be a valid query
        assert parse_query(translation.query_text()) is not None
