"""Tests for interface construction: discovery, exploration, preview,
home pages, configuration."""

import pytest

from repro.core.interface.config import ConfigurationPanel
from repro.core.interface.discovery import DiscoveryInterface
from repro.core.interface.exploration import ExplorationEngine
from repro.core.interface.homepage import HomePageManager
from repro.core.interface.preview import build_preview
from repro.core.spec.model import ProviderSpec, Visibility
from repro.errors import (
    ConfigurationError,
    MissingInputError,
    SpecValidationError,
    UnknownProviderError,
)
from repro.providers.suite import default_spec


@pytest.fixture
def interface(tiny_store, tiny_registry):
    return DiscoveryInterface(tiny_store, tiny_registry, default_spec())


class TestDiscoveryInterface:
    def test_validates_spec_on_construction(self, tiny_store, tiny_registry):
        bad = default_spec().with_provider(
            ProviderSpec(name="ghost", endpoint="catalog://nowhere",
                         representation="list")
        )
        with pytest.raises(SpecValidationError, match="not registered"):
            DiscoveryInterface(tiny_store, tiny_registry, bad)

    def test_overview_tabs_follow_spec_order(self, interface):
        tabs = interface.overview_tabs(user_id="u-ann")
        names = [t.provider_name for t in tabs]
        overview_specs = [
            p.name for p in default_spec().visible_in("overview")
        ]
        assert names == [n for n in overview_specs if n in names]

    def test_overview_excludes_input_requiring_providers(self, interface):
        names = {t.provider_name
                 for t in interface.overview_tabs(user_id="u-ann")}
        assert "owned_by" not in names
        assert "joinable" not in names

    def test_team_views_present_with_ambient_team(self, interface):
        names = {t.provider_name
                 for t in interface.overview_tabs(user_id="u-ann")}
        assert "team_docs" in names  # u-ann's first team is t-1

    def test_open_view_with_inputs(self, interface):
        view = interface.open_view("badged", inputs={"badge": "endorsed"})
        assert set(view.artifact_ids()) == {"t-orders", "d-sales"}

    def test_open_view_missing_required_input(self, interface):
        with pytest.raises(MissingInputError):
            interface.open_view("badged")

    def test_open_view_unknown_provider(self, interface):
        with pytest.raises(UnknownProviderError):
            interface.open_view("nope")

    def test_search_returns_list_view(self, interface):
        result, view = interface.search("badged: endorsed")
        assert view.representation == "list"
        assert view.artifact_ids() == result.artifact_ids()
        assert view.provider_name == "search"

    def test_filter_view(self, interface):
        view = interface.open_view("of_type",
                                   inputs={"artifact_type": "table"})
        filtered = interface.filter_view(view, "badged: endorsed")
        assert filtered.artifact_ids() == ["t-orders"]

    def test_with_spec_regenerates(self, interface):
        smaller = interface.spec.without_provider("recents")
        regenerated = interface.with_spec(smaller)
        names = {t.provider_name
                 for t in regenerated.overview_tabs(user_id="u-ann")}
        assert "recents" not in names
        # original interface unaffected
        original = {t.provider_name
                    for t in interface.overview_tabs(user_id="u-ann")}
        assert "recents" in original

    def test_describe_provider(self, interface):
        text = interface.describe_provider("joinable")
        assert "Joinable" in text
        assert "artifact" in text
        assert "graph" in text
        assert interface.describe_provider("nope") == ""

    def test_provider_titles(self, interface):
        titles = interface.provider_titles()
        assert titles["owned_by"] == "Owned By"


class TestExploration:
    def test_derive_input_values(self, interface):
        engine = ExplorationEngine(interface)
        values = engine.derive_input_values("t-orders")
        assert values["artifact"] == ["t-orders"]
        assert values["user"] == ["u-ann"]
        assert values["badge"] == ["endorsed"]
        assert values["artifact_type"] == ["table"]
        assert values["team"] == ["t-1"]
        assert values["text"] == ["sales"]

    def test_explore_surfaces_selection_driven_views(self, interface):
        engine = ExplorationEngine(interface)
        surfaced = engine.explore("t-orders", user_id="u-ann")
        by_provider = {s.provider_name for s in surfaced}
        assert {"owned_by", "badged", "of_type", "similar",
                "joinable", "lineage"} <= by_provider

    def test_explore_excludes_selected_from_lists(self, interface):
        engine = ExplorationEngine(interface)
        for surfaced in engine.explore("t-orders", user_id="u-ann"):
            if surfaced.view.representation in ("list", "tiles"):
                assert "t-orders" not in surfaced.view.artifact_ids()

    def test_explore_keeps_anchor_in_graphs(self, interface):
        engine = ExplorationEngine(interface)
        graph = next(
            s for s in engine.explore("t-orders", user_id="u-ann")
            if s.provider_name == "joinable"
        )
        assert "t-orders" in graph.view.artifact_ids()

    def test_explore_drops_empty_views(self, interface):
        engine = ExplorationEngine(interface)
        # w-q1 has no badges and no lineage children: fewer panels, none empty
        for surfaced in engine.explore("w-q1", user_id="u-dee"):
            assert not surfaced.view.is_empty()

    def test_reasons_are_descriptive(self, interface):
        engine = ExplorationEngine(interface)
        badged = next(
            s for s in engine.explore("t-orders", user_id="u-ann")
            if s.provider_name == "badged"
        )
        assert badged.reason == "badge = endorsed"


class TestPreview:
    def test_table_preview_has_snippet(self, tiny_store):
        preview = build_preview(tiny_store, "t-orders")
        assert preview.has_snippet()
        assert preview.columns[0] == "order_id"
        assert preview.snippet[0][0] == "o-0"

    def test_non_table_preview_no_snippet(self, tiny_store):
        preview = build_preview(tiny_store, "d-sales")
        assert not preview.has_snippet()
        assert preview.artifact_type == "dashboard"

    def test_preview_lineage_names(self, tiny_store):
        preview = build_preview(tiny_store, "v-orders")
        assert preview.upstream == ("ORDERS",)
        assert preview.downstream == ("Sales Dashboard",)

    def test_preview_usage_facts(self, tiny_store):
        preview = build_preview(tiny_store, "t-orders")
        assert preview.view_count == 7
        assert preview.favorite_count == 1
        assert preview.created_days_ago == pytest.approx(90.0, abs=0.1)


class TestHomePages:
    def test_fallback_to_overview(self, interface, tiny_store):
        manager = HomePageManager(interface)
        page = manager.home_page("t-1", user_id="u-ann")
        assert page.title == "Home of Alpha"
        assert page.tabs  # default tabs present

    def test_configure_and_render(self, interface):
        manager = HomePageManager(interface)
        new_spec = manager.configure(
            "t-1", ["recents", "badges"], acting_user="u-ann", title="Alpha HQ"
        )
        regenerated = interface.with_spec(new_spec)
        page = HomePageManager(regenerated).home_page("t-1", user_id="u-ann")
        assert page.title == "Alpha HQ"
        assert page.provider_names() == ["recents", "badges"]

    def test_configure_requires_admin(self, interface):
        manager = HomePageManager(interface)
        with pytest.raises(ConfigurationError, match="not an admin"):
            manager.configure("t-1", ["recents"], acting_user="u-bob")

    def test_configure_unknown_provider(self, interface):
        manager = HomePageManager(interface)
        with pytest.raises(UnknownProviderError):
            manager.configure("t-1", ["bogus"], acting_user="u-ann")

    def test_configure_duplicates_rejected(self, interface):
        manager = HomePageManager(interface)
        with pytest.raises(ConfigurationError, match="duplicates"):
            manager.configure("t-1", ["recents", "recents"],
                              acting_user="u-ann")

    def test_reconfigure_replaces_page(self, interface):
        manager = HomePageManager(interface)
        spec1 = manager.configure("t-1", ["recents"], acting_user="u-ann")
        manager2 = HomePageManager(interface.with_spec(spec1))
        spec2 = manager2.configure("t-1", ["badges"], acting_user="u-ann")
        pages = spec2.custom["team_home_pages"]
        assert len([p for p in pages if p["team"] == "t-1"]) == 1
        assert pages[-1]["providers"] == ["badges"]

    def test_removed_provider_skipped_on_render(self, interface):
        manager = HomePageManager(interface)
        spec1 = manager.configure("t-1", ["recents", "badges"],
                                  acting_user="u-ann")
        # The provider disappears from the spec later (spec drift).
        spec2 = spec1.without_provider("recents")
        regenerated = interface.with_spec(spec2)
        page = HomePageManager(regenerated).home_page("t-1",
                                                      user_id="u-ann")
        assert page.provider_names() == ["badges"]


class TestConfigurationPanel:
    def test_rows_list_all_providers(self, interface):
        panel = ConfigurationPanel(interface, "team", "t-1",
                                   acting_user="u-ann")
        rows = panel.rows()
        assert len(rows) == len(interface.spec)
        assert all(row.enabled for row in rows)

    def test_team_scope_requires_admin(self, interface):
        with pytest.raises(ConfigurationError, match="not an admin"):
            ConfigurationPanel(interface, "team", "t-1", acting_user="u-bob")

    def test_toggle_hides_in_team_layer(self, interface):
        panel = ConfigurationPanel(interface, "team", "t-1",
                                   acting_user="u-ann")
        panel.set_enabled("recents", False)
        visible = interface.customization.effective_providers(
            interface.spec, "overview", team_id="t-1"
        )
        assert "recents" not in [p.name for p in visible]
        assert not next(r for r in panel.rows()
                        if r.name == "recents").enabled

    def test_reenable(self, interface):
        panel = ConfigurationPanel(interface, "user", "u-ann")
        panel.set_enabled("recents", False)
        panel.set_enabled("recents", True)
        assert "recents" in panel.enabled_names()

    def test_toggle_unknown_provider(self, interface):
        panel = ConfigurationPanel(interface, "user", "u-ann")
        with pytest.raises(UnknownProviderError):
            panel.set_enabled("bogus", False)

    def test_reorder(self, interface):
        panel = ConfigurationPanel(interface, "user", "u-ann")
        panel.reorder(["most_viewed", "recents"])
        visible = interface.customization.effective_providers(
            interface.spec, "overview", user_id="u-ann"
        )
        assert [p.name for p in visible][:2] == ["most_viewed", "recents"]

    def test_reset(self, interface):
        panel = ConfigurationPanel(interface, "user", "u-ann")
        panel.set_enabled("recents", False)
        panel.reset()
        assert "recents" in panel.enabled_names()

    def test_invalid_scope(self, interface):
        with pytest.raises(ConfigurationError, match="scope"):
            ConfigurationPanel(interface, "galaxy", "x")
