"""Tests for layered customization (org → team → user)."""

import pytest

from repro.core.spec.customization import Customization, CustomizationLayer
from repro.core.spec.model import HumboldtSpec, ProviderSpec, Visibility
from repro.errors import ConfigurationError


def provider(name, **overrides):
    defaults = dict(name=name, endpoint=f"c://{name}", representation="list")
    defaults.update(overrides)
    return ProviderSpec(**defaults)


@pytest.fixture
def spec4():
    return HumboldtSpec(providers=(
        provider("a"), provider("b"), provider("c"),
        provider("d", visibility=Visibility(overview=False,
                                            exploration=True, search=True)),
    ))


class TestLayer:
    def test_hide_unhide(self):
        layer = CustomizationLayer()
        layer.hide("x")
        assert "x" in layer.hidden
        layer.unhide("x")
        assert layer.is_empty()

    def test_order_rejects_duplicates(self):
        layer = CustomizationLayer()
        with pytest.raises(ConfigurationError, match="duplicates"):
            layer.set_order(["a", "a"])


class TestEffectiveProviders:
    def test_default_is_spec_order(self, spec4):
        names = [
            p.name
            for p in Customization().effective_providers(spec4, "overview")
        ]
        assert names == ["a", "b", "c"]  # d is not overview-visible

    def test_org_hide_applies_to_everyone(self, spec4):
        custom = Customization()
        custom.org.hide("b")
        names = [
            p.name
            for p in custom.effective_providers(
                spec4, "overview", user_id="u", team_id="t"
            )
        ]
        assert names == ["a", "c"]

    def test_team_hide_applies_to_team_only(self, spec4):
        custom = Customization()
        custom.team_layer("t-1").hide("a")
        in_team = custom.effective_providers(spec4, "overview",
                                             team_id="t-1")
        outside = custom.effective_providers(spec4, "overview",
                                             team_id="t-2")
        assert [p.name for p in in_team] == ["b", "c"]
        assert [p.name for p in outside] == ["a", "b", "c"]

    def test_user_hide_stacks_on_team(self, spec4):
        custom = Customization()
        custom.team_layer("t-1").hide("a")
        custom.user_layer("u-1").hide("b")
        names = [
            p.name
            for p in custom.effective_providers(
                spec4, "overview", user_id="u-1", team_id="t-1"
            )
        ]
        assert names == ["c"]

    def test_user_order_beats_team_order(self, spec4):
        custom = Customization()
        custom.team_layer("t-1").set_order(["c", "a", "b"])
        custom.user_layer("u-1").set_order(["b", "c"])
        names = [
            p.name
            for p in custom.effective_providers(
                spec4, "overview", user_id="u-1", team_id="t-1"
            )
        ]
        assert names == ["b", "c", "a"]  # ordered ones first, rest follow

    def test_order_ignores_hidden_and_unknown(self, spec4):
        custom = Customization()
        custom.user_layer("u").hide("a")
        custom.user_layer("u").set_order(["a", "zzz", "c"])
        names = [
            p.name
            for p in custom.effective_providers(spec4, "overview",
                                                user_id="u")
        ]
        assert names == ["c", "b"]

    def test_exploration_surface(self, spec4):
        names = [
            p.name
            for p in Customization().effective_providers(spec4, "exploration")
        ]
        assert "d" in names

    def test_reset_team(self, spec4):
        custom = Customization()
        custom.team_layer("t-1").hide("a")
        custom.reset_team("t-1")
        names = [
            p.name
            for p in custom.effective_providers(spec4, "overview",
                                                team_id="t-1")
        ]
        assert names == ["a", "b", "c"]

    def test_reset_user(self, spec4):
        custom = Customization()
        custom.user_layer("u-1").hide("a")
        custom.reset_user("u-1")
        assert len(custom.effective_providers(spec4, "overview",
                                              user_id="u-1")) == 3
