"""Tests for the extended provider suite and extended_spec()."""

import pytest

from repro.catalog.model import Artifact, ArtifactType, Column
from repro.core.spec.validation import validate_spec
from repro.errors import MissingInputError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.extended import (
    ExtendedProviders,
    extended_spec,
    install_extended_endpoints,
)
from repro.providers.registry import EndpointRegistry
from repro.util.clock import DAY


def req(inputs=None, limit=20):
    return ProviderRequest(inputs=dict(inputs or {}),
                           context=RequestContext(limit=limit))


@pytest.fixture
def extended(tiny_store):
    return ExtendedProviders(tiny_store)


class TestUnionable:
    def test_finds_schema_compatible_tables(self, extended):
        result = extended.unionable(req({"artifact": "t-orders"}))
        assert "t-customers" in result.artifact_ids()

    def test_requires_artifact(self, extended):
        with pytest.raises(MissingInputError):
            extended.unionable(req())

    def test_unknown_artifact_empty(self, extended):
        assert extended.unionable(req({"artifact": "ghost"})).is_empty()


class TestStale:
    def test_never_viewed_old_artifact_is_stale(self, tiny_store, extended):
        # t-web was created at day 20 and (in the fixture) never viewed;
        # "now" is day 100, so it is 80 days untouched -> not stale at 90.
        result = extended.stale(req())
        assert "t-web" not in result.artifact_ids()
        tiny_store.clock.advance(days=30)  # now 110 days, t-web 90+ stale
        result = extended.stale(req())
        assert "t-web" in result.artifact_ids()

    def test_deprecated_badge_is_always_stale(self, tiny_store, extended):
        tiny_store.grant_badge("w-q1", "deprecated", "u-bob")
        result = extended.stale(req())
        assert result.artifact_ids()[0] == "w-q1"  # deprecated ranks first

    def test_recently_viewed_not_stale(self, tiny_store, extended):
        assert "t-orders" not in extended.stale(req()).artifact_ids()


class TestHasColumn:
    def test_finds_tables_with_column(self, extended):
        result = extended.has_column(req({"text": "customer_id"}))
        assert set(result.artifact_ids()) == {"t-orders", "t-customers"}

    def test_substring_match(self, extended):
        result = extended.has_column(req({"text": "customer"}))
        assert "t-orders" in result.artifact_ids()

    def test_requires_text(self, extended):
        with pytest.raises(MissingInputError):
            extended.has_column(req())

    def test_non_tabular_excluded(self, tiny_store, extended):
        result = extended.has_column(req({"text": "id"}))
        types = {
            tiny_store.artifact(aid).artifact_type
            for aid in result.artifact_ids()
        }
        assert types <= {ArtifactType.TABLE, ArtifactType.DATASET}


class TestOrphans:
    def test_unlinked_artifacts_listed(self, extended):
        result = extended.orphans(req())
        assert "t-web" in result.artifact_ids()
        assert "w-q1" in result.artifact_ids()

    def test_linked_artifacts_excluded(self, extended):
        ids = extended.orphans(req()).artifact_ids()
        assert "t-orders" not in ids
        assert "d-sales" not in ids


class TestExtendedSpec:
    def test_spec_validates_against_full_registry(self, tiny_store,
                                                  tiny_registry):
        install_extended_endpoints(tiny_registry,
                                   ExtendedProviders(tiny_store))
        spec = extended_spec()
        assert validate_spec(spec, registry=tiny_registry) == []

    def test_extends_default(self, tiny_store):
        from repro.providers.suite import default_spec

        spec = extended_spec()
        assert len(spec) == len(default_spec()) + 4
        assert "unionable" in spec
        assert "governance" in spec.categories()

    def test_search_fields_added(self):
        fields = extended_spec().search_fields()
        assert "has_column" in fields
        assert "stale" in fields

    def test_end_to_end_with_workbook(self, tiny_store):
        from repro.workbook.app import WorkbookApp

        app = WorkbookApp(tiny_store)
        install_extended_endpoints(app.registry,
                                   ExtendedProviders(tiny_store))
        app.update_spec(extended_spec())
        result, _ = app.interface.search("has_column: customer_id")
        assert set(result.artifact_ids()) == {"t-orders", "t-customers"}
        # exploration now also surfaces unionable views
        session = app.session("u-ann")
        session.select_artifact("t-orders")
        providers = {s.provider_name for s in session.explore_selection()}
        assert "unionable" in providers
