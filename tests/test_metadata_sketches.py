"""Tests for MinHash sketches and LSH."""

import pytest

from repro.metadata.sketches import (
    LshIndex,
    MinHasher,
    containment,
    exact_jaccard,
    stable_hash,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_32_bit(self):
        assert 0 <= stable_hash("anything") < 2**32

    def test_distinct_inputs(self):
        assert stable_hash("a") != stable_hash("b")


class TestExactMeasures:
    def test_jaccard_identical(self):
        assert exact_jaccard({"a", "b"}, {"a", "b"}) == 1.0

    def test_jaccard_disjoint(self):
        assert exact_jaccard({"a"}, {"b"}) == 0.0

    def test_jaccard_empty(self):
        assert exact_jaccard(set(), set()) == 0.0

    def test_jaccard_partial(self):
        assert exact_jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_containment(self):
        assert containment({"a", "b"}, {"a", "b", "c"}) == 1.0
        assert containment({"a", "b"}, {"a"}) == 0.5
        assert containment(set(), {"a"}) == 0.0


class TestMinHasher:
    def test_signature_length(self):
        hasher = MinHasher(num_perm=32)
        assert len(hasher.signature(["a", "b"])) == 32

    def test_deterministic_across_instances(self):
        sig1 = MinHasher(num_perm=32, seed=1).signature(["x", "y"])
        sig2 = MinHasher(num_perm=32, seed=1).signature(["x", "y"])
        assert sig1 == sig2

    def test_order_and_duplicates_irrelevant(self):
        hasher = MinHasher()
        assert hasher.signature(["a", "b", "a"]) == hasher.signature(["b", "a"])

    def test_identical_sets_estimate_one(self):
        hasher = MinHasher()
        values = [f"v{i}" for i in range(50)]
        assert hasher.signature(values).jaccard(hasher.signature(values)) == 1.0

    def test_disjoint_sets_estimate_near_zero(self):
        hasher = MinHasher(num_perm=128)
        a = hasher.signature([f"a{i}" for i in range(100)])
        b = hasher.signature([f"b{i}" for i in range(100)])
        assert a.jaccard(b) < 0.1

    def test_estimate_tracks_exact(self):
        hasher = MinHasher(num_perm=256)
        left = {f"v{i}" for i in range(100)}
        right = {f"v{i}" for i in range(50, 150)}
        exact = exact_jaccard(left, right)
        estimate = hasher.signature(left).jaccard(hasher.signature(right))
        assert abs(estimate - exact) < 0.12

    def test_length_mismatch_raises(self):
        a = MinHasher(num_perm=16).signature(["x"])
        b = MinHasher(num_perm=32).signature(["x"])
        with pytest.raises(ValueError):
            a.jaccard(b)

    def test_invalid_num_perm(self):
        with pytest.raises(ValueError):
            MinHasher(num_perm=0)

    def test_empty_set_signature(self):
        hasher = MinHasher(num_perm=8)
        sig = hasher.signature([])
        assert len(sig) == 8


class TestLshIndex:
    def make(self, num_perm=64, bands=32):
        hasher = MinHasher(num_perm=num_perm)
        index = LshIndex(num_perm=num_perm, bands=bands)
        return hasher, index

    def test_bands_must_divide(self):
        with pytest.raises(ValueError):
            LshIndex(num_perm=64, bands=30)

    def test_add_and_query_similar(self):
        hasher, index = self.make()
        base = [f"v{i}" for i in range(100)]
        index.add("base", hasher.signature(base))
        index.add("overlap", hasher.signature(base[:70] + ["x"] * 30))
        index.add("unrelated", hasher.signature([f"z{i}" for i in range(100)]))
        hits = index.query(hasher.signature(base), threshold=0.3)
        keys = [k for k, _ in hits]
        assert "base" in keys
        assert "overlap" in keys
        assert "unrelated" not in keys

    def test_query_sorted_by_score(self):
        hasher, index = self.make()
        base = [f"v{i}" for i in range(100)]
        index.add("near", hasher.signature(base[:90] + ["x"] * 10))
        index.add("far", hasher.signature(base[:40] + [f"y{i}" for i in range(60)]))
        hits = index.query(hasher.signature(base), threshold=0.1)
        scores = [score for _, score in hits]
        assert scores == sorted(scores, reverse=True)

    def test_remove(self):
        hasher, index = self.make()
        sig = hasher.signature(["a", "b", "c"])
        index.add("k", sig)
        assert "k" in index
        index.remove("k")
        assert "k" not in index
        assert index.query(sig, threshold=0.0) == []

    def test_remove_missing_is_noop(self):
        _, index = self.make()
        index.remove("ghost")

    def test_re_add_replaces(self):
        hasher, index = self.make()
        index.add("k", hasher.signature(["a"]))
        index.add("k", hasher.signature(["b"]))
        assert len(index) == 1
        assert index.signature_of("k") == hasher.signature(["b"])

    def test_wrong_signature_length_rejected(self):
        hasher = MinHasher(num_perm=32)
        index = LshIndex(num_perm=64, bands=32)
        with pytest.raises(ValueError):
            index.add("k", hasher.signature(["a"]))

    def test_candidates_superset_of_query_hits(self):
        hasher, index = self.make()
        base = [f"v{i}" for i in range(60)]
        index.add("a", hasher.signature(base))
        signature = hasher.signature(base[:50] + ["q"] * 10)
        hits = {k for k, _ in index.query(signature, threshold=0.2)}
        assert hits <= index.candidates(signature)
