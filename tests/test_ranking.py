"""Tests for the ranking engine (Listing 1 semantics)."""

import pytest

from repro.core.ranking import RankedArtifact, Ranker, combine_rankings
from repro.core.spec.model import HumboldtSpec, ProviderSpec, RankingWeight
from repro.providers.base import ScoredArtifact
from repro.providers.fields import FieldResolver


@pytest.fixture
def ranker(tiny_store):
    return Ranker(FieldResolver(tiny_store))


W_VIEWS = RankingWeight("views", 1.5)
W_FAV = RankingWeight("favorite", 4.3)


class TestScore:
    def test_weighted_sum(self, ranker):
        # t-orders: 7 views, 1 favourite
        entry = ranker.score("t-orders", [W_FAV, W_VIEWS])
        assert entry.score == pytest.approx(4.3 * 1 + 1.5 * 7)

    def test_contributions_recorded(self, ranker):
        entry = ranker.score("t-orders", [W_FAV, W_VIEWS])
        assert dict(entry.contributions) == {
            "favorite": pytest.approx(4.3),
            "views": pytest.approx(10.5),
        }

    def test_base_score_added(self, ranker):
        entry = ranker.score("t-orders", [W_VIEWS], base_score=100.0)
        assert entry.score == pytest.approx(100.0 + 10.5)
        assert entry.base_score == 100.0

    def test_prefers_prefetched_fields(self, ranker):
        entry = ranker.score("t-orders", [W_VIEWS], fields={"views": 2.0})
        assert entry.score == pytest.approx(3.0)

    def test_no_weights_is_base_only(self, ranker):
        assert ranker.score("t-orders", []).score == 0.0


class TestRankItems:
    def test_orders_by_score_then_id(self, ranker):
        items = [
            ScoredArtifact("t-web"),       # cold
            ScoredArtifact("t-orders"),    # hot
            ScoredArtifact("t-customers"),
        ]
        ranked = ranker.rank_items(items, [W_VIEWS])
        assert ranked[0].artifact_id == "t-orders"
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_tie_breaks_on_id(self, ranker):
        items = [ScoredArtifact("v-orders"), ScoredArtifact("t-web")]
        ranked = ranker.rank_items(items, [])
        assert [r.artifact_id for r in ranked] == ["t-web", "v-orders"]

    def test_boolean_fields_ignored_in_prefetch(self, ranker):
        items = [ScoredArtifact("t-web", fields={"views": True})]
        ranked = ranker.rank_items(items, [W_VIEWS])
        # bool True must not be treated as views=1; resolver supplies 0.
        assert ranked[0].score == 0.0

    def test_rank_ids(self, ranker):
        ranked = ranker.rank_ids(["t-web", "t-orders"], [W_VIEWS])
        assert ranked[0].artifact_id == "t-orders"


class TestLiveRanking:
    """``rank_items(..., live=True)`` re-resolves resolver-served fields
    so consumers of *cached* provider results rank on current usage."""

    def test_live_mode_reresolves_served_fields(self, ranker):
        # The snapshot says 2 views; the live resolver knows about 7.
        items = [ScoredArtifact("t-orders", fields={"views": 2.0})]
        snapshot = ranker.rank_items(items, [W_VIEWS])
        live = ranker.rank_items(items, [W_VIEWS], live=True)
        assert snapshot[0].score == pytest.approx(1.5 * 2)
        assert live[0].score == pytest.approx(1.5 * 7)

    def test_live_mode_keeps_provider_computed_fields(self, ranker):
        # matched_columns exists only in the provider's snapshot; live
        # mode must not discard fields the resolver cannot serve.
        weight = RankingWeight("matched_columns", 2.0)
        items = [ScoredArtifact("t-orders", fields={"matched_columns": 3.0})]
        live = ranker.rank_items(items, [weight], live=True)
        assert live[0].score == pytest.approx(6.0)


class TestRerankingWithoutCode:
    def test_weight_change_reorders(self, ranker, tiny_store):
        # d-sales has fewer views than t-customers but an 'endorsed' badge.
        by_views = ranker.rank_ids(
            ["d-sales", "t-customers"], [RankingWeight("views", 1.0)]
        )
        by_badge = ranker.rank_ids(
            ["d-sales", "t-customers"], [RankingWeight("endorsed", 10.0)]
        )
        assert by_views[0].artifact_id == "t-customers"
        assert by_badge[0].artifact_id == "d-sales"


class TestCombine:
    def test_scores_accumulate(self):
        left = [RankedArtifact("a", 2.0), RankedArtifact("b", 1.0)]
        right = [RankedArtifact("a", 3.0), RankedArtifact("c", 5.0)]
        combined = combine_rankings([left, right])
        assert [(r.artifact_id, r.score) for r in combined] == [
            ("a", 5.0), ("c", 5.0), ("b", 1.0),
        ]

    def test_empty_input(self):
        assert combine_rankings([]) == []

    def test_single_ranking_passthrough(self):
        ranking = [RankedArtifact("a", 1.0)]
        assert combine_rankings([ranking]) == ranking


class TestEffectiveWeights:
    def test_fallback_through_spec(self):
        spec = HumboldtSpec(
            providers=(
                ProviderSpec(name="p", endpoint="c://p",
                             representation="list"),
            ),
            global_ranking=(W_FAV,),
        )
        assert spec.effective_ranking("p") == (W_FAV,)
