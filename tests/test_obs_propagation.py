"""Trace propagation across the serving stack's thread boundaries.

The observability subsystem's hard cases are where a request hops
threads: ``execute_many`` hands work to engine pool workers, a
single-flight waiter shares another request's fetch, and a federated
search fans out through member engines running their own evaluators.
These tests pin that every such hop lands in the caller's trace — and
that the degraded arms (deadline expiry, open breaker) annotate their
spans rather than dropping them.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import RingBufferExporter, Tracer, render_span_tree
from repro.providers.base import (
    ProviderRequest,
    ScoredArtifact,
    list_result,
)
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    FetchStatus,
)
from repro.providers.faults import FailNTimesEndpoint
from repro.providers.registry import EndpointRegistry
from repro.synth import SynthConfig, generate_catalog


class CountingEndpoint:
    def __init__(self, ids=("a-1",)):
        self.calls = 0
        self._ids = tuple(ids)

    def __call__(self, request):
        self.calls += 1
        return list_result([ScoredArtifact(aid) for aid in self._ids])


class BlockingEndpoint:
    """Blocks inside the provider until released; lets a test hold a
    fetch in flight while a second request joins it."""

    def __init__(self):
        self.entered = threading.Event()
        self.release = threading.Event()
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=5.0)
        return list_result([ScoredArtifact("a-1")])


def traced_engine(registry, **kwargs):
    engine = ExecutionEngine(registry, **kwargs)
    ring = RingBufferExporter()
    engine.enable_tracing(ring)
    return engine, ring


def by_name(ring):
    spans = {}
    for span in ring.spans():
        spans.setdefault(span.name, []).append(span)
    return spans


class TestPoolWorkerPropagation:
    def test_execute_many_fetches_parent_under_the_batch_span(self):
        registry = EndpointRegistry()
        for i in range(4):
            registry.register(f"x://p{i}", CountingEndpoint())
        engine, ring = traced_engine(
            registry,
            policy=ExecutionPolicy.defaults().replace(max_workers=4),
        )
        calls = [(f"x://p{i}", ProviderRequest()) for i in range(4)]
        outcomes = engine.execute_many(calls)
        assert all(o.status is FetchStatus.OK for o in outcomes)

        spans = by_name(ring)
        (batch,) = spans["engine.execute_many"]
        fetches = spans["engine.fetch"]
        assert len(fetches) == 4
        # Pool workers adopted the caller's context: every fetch span —
        # though finished on a different thread — is in the batch's
        # trace, parented directly under the batch span.
        for fetch in fetches:
            assert fetch.trace_id == batch.trace_id
            assert fetch.parent_id == batch.span_id
            assert fetch.attrs["outcome"] == "ok"
        invokes = spans["provider.invoke"]
        assert {s.parent_id for s in invokes} == {
            f.span_id for f in fetches
        }
        assert batch.attrs["ran"] == 4
        engine.close()

    def test_batch_nests_under_an_ambient_caller_span(self):
        registry = EndpointRegistry()
        registry.register("x://p", CountingEndpoint())
        engine, ring = traced_engine(registry)
        with engine.tracer.span("request") as req:
            engine.execute_many([("x://p", ProviderRequest())])
        spans = by_name(ring)
        (batch,) = spans["engine.execute_many"]
        assert batch.parent_id == req.span_id
        assert batch.trace_id == req.trace_id
        engine.close()


class TestSingleFlightLinks:
    def test_waiter_span_links_to_leader_fetch_span(self):
        registry = EndpointRegistry()
        endpoint = BlockingEndpoint()
        registry.register("x://slow", endpoint)
        engine, ring = traced_engine(registry)
        outcomes = {}

        def leader():
            outcomes["leader"] = engine.execute("x://slow", ProviderRequest())

        def waiter():
            outcomes["waiter"] = engine.execute("x://slow", ProviderRequest())

        lead_thread = threading.Thread(target=leader)
        lead_thread.start()
        assert endpoint.entered.wait(timeout=5.0)
        wait_thread = threading.Thread(target=waiter)
        wait_thread.start()
        # Give the waiter time to register on the in-flight fetch, then
        # let the provider return.
        deadline = threading.Event()
        deadline.wait(0.2)
        endpoint.release.set()
        lead_thread.join(timeout=5.0)
        wait_thread.join(timeout=5.0)

        assert endpoint.calls == 1
        assert outcomes["leader"].status is FetchStatus.OK
        assert outcomes["waiter"].status is FetchStatus.OK
        assert engine.stats.single_flights == 1

        spans = by_name(ring)
        (join,) = spans["engine.join"]
        leads = [
            s for s in spans["engine.fetch"]
            if s.attrs.get("endpoint") == "x://slow"
        ]
        (lead_fetch,) = leads
        # The waiter is in its own trace (it belongs to another request)
        # but links to the leader's fetch span — the invocation that
        # actually did its work.
        assert join.links == (lead_fetch.span_id,)
        assert join.trace_id != lead_fetch.trace_id
        assert join.attrs["outcome"] == "ok"
        assert f"~> {lead_fetch.span_id}" in render_span_tree(ring.spans())
        engine.close()


class TestDegradedArms:
    def test_deadline_expiry_annotates_skip(self):
        fake = [0.0]
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        registry.register("x://p", endpoint)
        engine, ring = traced_engine(registry, timer=lambda: fake[0])
        deadline = engine.deadline(10.0)
        fake[0] = 1.0  # 1 s later: the 10 ms budget is long spent
        outcome = engine.execute("x://p", ProviderRequest(), deadline=deadline)
        assert outcome.status is FetchStatus.SKIPPED
        assert endpoint.calls == 0
        (fetch,) = by_name(ring)["engine.fetch"]
        assert fetch.attrs["gate"] == "deadline"
        assert fetch.attrs["outcome"] == "skipped"
        # Simulated clock: no time passed inside the span.
        assert fetch.duration_ms == 0.0
        engine.close()

    def test_deadline_expiry_with_stale_fallback_annotates_stale(self):
        fake = [0.0]
        registry = EndpointRegistry()
        registry.register("x://p", CountingEndpoint())
        engine, ring = traced_engine(
            registry,
            timer=lambda: fake[0],
            policy=ExecutionPolicy.defaults().replace(
                cache_ttl_s=10.0, stale_grace_s=900.0
            ),
        )
        assert engine.execute("x://p", ProviderRequest()).status is FetchStatus.OK
        fake[0] = 20.0  # entry expired, within stale grace
        deadline = engine.deadline(10.0)
        fake[0] = 21.0  # budget spent
        outcome = engine.execute("x://p", ProviderRequest(), deadline=deadline)
        assert outcome.status is FetchStatus.STALE
        stale_fetches = [
            s for s in by_name(ring)["engine.fetch"]
            if s.attrs.get("gate") == "deadline"
        ]
        (fetch,) = stale_fetches
        assert fetch.attrs["outcome"] == "stale"
        engine.close()

    def test_breaker_open_annotates_gate(self):
        registry = EndpointRegistry()
        endpoint = FailNTimesEndpoint(CountingEndpoint(), fail_count=10)
        registry.register("x://flaky", endpoint)
        engine, ring = traced_engine(
            registry,
            policy=ExecutionPolicy.defaults().replace(
                attempts=1, cache_ttl_s=0.0,
                breaker_failure_threshold=1,
                breaker_reset_timeout_s=600.0,
            ),
        )
        first = engine.execute("x://flaky", ProviderRequest())
        assert first.status is FetchStatus.ERROR
        second = engine.execute("x://flaky", ProviderRequest())
        assert second.status is FetchStatus.SKIPPED

        fetches = by_name(ring)["engine.fetch"]
        assert len(fetches) == 2
        error_span, gated_span = fetches
        assert error_span.attrs["outcome"] == "error"
        assert error_span.attrs["error"] == "ProviderError"
        assert gated_span.attrs["gate"] == "breaker"
        assert gated_span.attrs["outcome"] == "skipped"
        engine.close()


class TestFederationFanOut:
    @pytest.fixture
    def federation(self):
        from repro.federation.partition import federate

        store = generate_catalog(SynthConfig(seed=7, n_tables=24))
        federation, _ = federate(store, 3)
        yield federation
        federation.close()
        store.close()

    def test_member_spans_join_the_federation_trace(self, federation):
        ring = RingBufferExporter()
        federation.set_tracer(Tracer(exporters=(ring,)))
        result = federation.search("type: table", limit=10)
        assert result.total > 0

        spans = by_name(ring)
        (root,) = spans["federation.search"]
        assert root.parent_id is None
        assert root.attrs["responded"] == 3
        assert root.attrs["failed"] == 0

        member_fetches = [
            s for s in spans["engine.fetch"]
            if s.attrs.get("endpoint", "").startswith("fed://")
        ]
        assert len(member_fetches) == 3
        assert {s.trace_id for s in member_fetches} == {root.trace_id}

        # Member evaluators ran on *their own* engines, yet their search
        # spans are in the federation's trace, nested below the member
        # invocation that triggered them.
        member_searches = spans["query.search"]
        assert len(member_searches) == 3
        assert {s.trace_id for s in member_searches} == {root.trace_id}
        invoke_ids = {s.span_id for s in spans["provider.invoke"]}
        assert all(s.parent_id in invoke_ids for s in member_searches)
        assert len(spans["query.plan"]) == 3

    def test_members_added_after_set_tracer_inherit_it(self, federation):
        tracer = Tracer(exporters=(RingBufferExporter(),))
        federation.set_tracer(tracer)
        extra = generate_catalog(SynthConfig(seed=11, n_tables=6))
        federation.add_member("late", extra)
        member = federation._members["late"]
        assert member.evaluator.engine.tracer is tracer
