"""Tests pinning evaluator fetch-limit semantics.

The evaluator fetches provider results with a large internal limit so
set operations see complete lists; these tests pin that behaviour and
document what happens when the limit is made artificially small.
"""

import pytest

from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog


@pytest.fixture(scope="module")
def big_eval():
    store = generate_catalog(SynthConfig(seed=19, n_tables=120,
                                         usage_events=1000))
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store))
    language = QueryLanguage(default_spec())
    evaluator = QueryEvaluator(store, registry, language,
                               Ranker(FieldResolver(store)))
    return store, evaluator


class TestFetchLimit:
    def test_default_limit_sees_all_matches(self, big_eval):
        store, evaluator = big_eval
        result = evaluator.search("type: table", limit=1000)
        assert result.total == len(store.by_type("table"))

    def test_intersection_complete_at_scale(self, big_eval):
        store, evaluator = big_eval
        both = evaluator.search("type: table & tagged: sales", limit=1000)
        expected = set(store.by_type("table")) & set(store.by_tag("sales"))
        assert set(both.artifact_ids()) == expected

    def test_small_fetch_limit_truncates_provider_lists(self, big_eval):
        """Documented trade-off: a small fetch limit caps each provider's
        contribution, so conjunctions may under-report — the reason the
        default is intentionally large."""
        store, evaluator = big_eval
        original = evaluator.fetch_limit
        try:
            evaluator.fetch_limit = 5
            truncated = evaluator.search("type: table", limit=1000)
            assert truncated.total <= 5
        finally:
            evaluator.fetch_limit = original

    def test_display_limit_does_not_affect_total(self, big_eval):
        _, evaluator = big_eval
        result = evaluator.search("type: table", limit=3)
        assert len(result.entries) == 3
        assert result.total > 3


class TestPrefetchIdentity:
    """Prefetch results are keyed by branch position, not ``id(node)``.

    A short-circuiting ``And`` used to leave prefetched entries keyed by
    object ids on the shared eval state; CPython reuses ids, so a later
    node could inherit a dead node's result.  The dict is now local to
    each combination loop and indexed by child position.
    """

    def test_short_circuit_leaves_no_state_residue(self, big_eval):
        from repro.core.query.evaluator import _EvalState
        from repro.providers.base import RequestContext

        _, evaluator = big_eval
        compiled = evaluator.language.compile(
            "tagged: no-such-tag-anywhere & type: table & tagged: sales"
        )
        state = _EvalState()
        with evaluator.engine.scope():
            ids = evaluator._eval(compiled.node, RequestContext(), None, state)
        assert ids == []
        # The state must carry nothing addressable by object identity.
        assert not getattr(state, "prefetched", {})

    def test_prefetched_and_serial_paths_agree(self, big_eval):
        """The parallel-prefetch fast path and a forced-serial walk must
        produce identical membership and order for And/Or queries."""
        store, evaluator = big_eval
        serial = QueryEvaluator(
            store,
            evaluator.registry,
            evaluator.language,
            evaluator.ranker,
        )
        # Forcing the prefetcher to decline makes every branch evaluate
        # through the serial recursive path.
        serial._prefetch_branches = lambda children, context, state: {}
        for query in (
            "type: table & tagged: sales",
            "tagged: sales | badged: endorsed | type: workbook",
            "type: table & tagged: sales & tagged: crm",
        ):
            fast = evaluator.search(query, limit=1000)
            slow = serial.search(query, limit=1000)
            assert fast.artifact_ids() == slow.artifact_ids(), query
