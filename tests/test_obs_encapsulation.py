"""Static scan: observability primitives live in :mod:`repro.obs` only.

Before the subsystem existed, three modules carried their own
nearest-rank ``_percentile`` and the engine kept a private latency
summary.  Those are now :func:`repro.obs.metrics.percentile` /
:func:`~repro.obs.metrics.summarize_latencies` and the
:class:`~repro.obs.metrics.MetricsRegistry` histograms — and this test
keeps it that way: any ``src/repro`` module outside ``repro/obs/``
that re-grows its own percentile math, latency summarizer or span/metric
types fails here with a pointer at the shared implementation.
"""

from __future__ import annotations

import re
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Pattern → what to use instead.  Matched line-by-line against every
#: ``src/repro`` module outside ``repro/obs/``.
FORBIDDEN = {
    r"\bdef\s+_?percentile\b": "repro.obs.metrics.percentile",
    r"\bdef\s+_latency_summary\b": "repro.obs.metrics.summarize_latencies",
    r"\bdef\s+summarize_latencies\b": "repro.obs.metrics.summarize_latencies",
    r"\bclass\s+(Counter|Gauge|Histogram|MetricsRegistry)\b":
        "repro.obs.metrics",
    r"\bclass\s+(Span|Tracer|TraceContext)\b": "repro.obs.trace",
    r"\bstatistics\.(quantiles|median)\b": "repro.obs.metrics.percentile",
}


def _scannable_modules() -> list[Path]:
    modules = [
        path
        for path in sorted(SRC.rglob("*.py"))
        if "obs" not in path.relative_to(SRC).parts
    ]
    assert len(modules) > 20, "scan looks broken: too few modules found"
    return modules


def test_no_module_outside_obs_regrows_timing_or_counter_state():
    violations: list[str] = []
    for path in _scannable_modules():
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            for pattern, replacement in FORBIDDEN.items():
                if re.search(pattern, line):
                    violations.append(
                        f"{path.relative_to(SRC.parent)}:{number}: "
                        f"{line.strip()!r} — use {replacement}"
                    )
    assert violations == [], "\n".join(violations)


def test_the_scan_actually_matches_the_old_idioms():
    """Guard the guard: the patterns must still catch the code they were
    written to ban (a regex typo would make the scan pass vacuously)."""
    old_idioms = [
        "def _percentile(samples: list[float], q: float) -> float:",
        "def percentile(samples, fraction):",
        "def _latency_summary(samples):",
        "class Tracer:",
        "class MetricsRegistry:",
        "p50 = statistics.quantiles(samples, n=4)",
    ]
    for idiom in old_idioms:
        assert any(
            re.search(pattern, idiom) for pattern in FORBIDDEN
        ), f"no pattern matches {idiom!r}"


def test_obs_owns_the_one_percentile_implementation():
    from repro.load import federation, harness
    from repro.obs.metrics import percentile
    from repro.providers import execution

    assert harness.percentile is percentile
    assert federation.percentile is percentile
    assert execution.summarize_latencies.__module__ == "repro.obs.metrics"
