"""Unit tests for repro.util: ids, clock, text helpers."""

import pytest

from repro.util.clock import DAY, SimulationClock
from repro.util.ids import IdFactory, slugify
from repro.util.textutil import ngrams, normalize, tokenize, truncate


class TestSlugify:
    def test_basic(self):
        assert slugify("Owned By!") == "owned_by"

    def test_collapses_runs(self):
        assert slugify("a  -- b") == "a_b"

    def test_strips_edges(self):
        assert slugify("--x--") == "x"

    def test_empty_becomes_placeholder(self):
        assert slugify("!!!") == "x"

    def test_numbers_preserved(self):
        assert slugify("Q1 2024") == "q1_2024"


class TestIdFactory:
    def test_sequence_per_kind(self):
        ids = IdFactory()
        assert ids.next("user") == "user-00001"
        assert ids.next("user") == "user-00002"
        assert ids.next("table") == "table-00001"

    def test_peek_counts_issued(self):
        ids = IdFactory()
        ids.next("x")
        ids.next("x")
        assert ids.peek("x") == 2
        assert ids.peek("y") == 0

    def test_reset(self):
        ids = IdFactory()
        ids.next("x")
        ids.reset()
        assert ids.next("x") == "x-00001"

    def test_custom_width(self):
        assert IdFactory(width=3).next("t") == "t-001"


class TestSimulationClock:
    def test_starts_at_epoch(self):
        clock = SimulationClock(epoch=1000.0)
        assert clock.now() == 1000.0
        assert clock.epoch == 1000.0

    def test_advance_seconds_and_days(self):
        clock = SimulationClock(epoch=0.0)
        clock.advance(seconds=10)
        clock.advance(days=1)
        assert clock.now() == 10 + DAY

    def test_advance_rejects_negative(self):
        clock = SimulationClock()
        with pytest.raises(ValueError):
            clock.advance(seconds=-1)

    def test_at_and_days_since(self):
        clock = SimulationClock(epoch=0.0)
        clock.advance(days=10)
        assert clock.at(3) == 3 * DAY
        assert clock.days_since(clock.at(4)) == pytest.approx(6.0)


class TestTokenize:
    def test_splits_camel_case(self):
        assert tokenize("SalesOrders") == ["sales", "orders"]

    def test_splits_underscores_and_numbers(self):
        assert tokenize("SALES_ORDERS_2024") == ["sales", "orders", "2024"]

    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_empty(self):
        assert tokenize("") == []

    def test_punctuation_is_separator(self):
        assert tokenize("a.b-c,d") == ["a", "b", "c", "d"]


class TestNormalize:
    def test_collapses_whitespace(self):
        assert normalize("  A   B\tC ") == "a b c"


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_too_short_returns_empty(self):
        assert ngrams(["a"], 2) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestTruncate:
    def test_short_text_unchanged(self):
        assert truncate("abc", 5) == "abc"

    def test_long_text_gets_ellipsis(self):
        assert truncate("abcdef", 4) == "abc…"
        assert len(truncate("abcdef", 4)) == 4

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            truncate("abc", -1)

    def test_limit_smaller_than_ellipsis(self):
        assert truncate("abcdef", 1) == "…"
