"""Property-based tests for customization-layer invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec.customization import Customization
from repro.core.spec.model import HumboldtSpec, ProviderSpec

_NAMES = ["p1", "p2", "p3", "p4", "p5", "p6"]
_SPEC = HumboldtSpec(providers=tuple(
    ProviderSpec(name=name, endpoint=f"c://{name}", representation="list")
    for name in _NAMES
))

name_sets = st.sets(st.sampled_from(_NAMES))
name_orders = st.lists(st.sampled_from(_NAMES), unique=True)


class TestCustomizationInvariants:
    @given(org_hidden=name_sets, team_hidden=name_sets, user_hidden=name_sets)
    @settings(max_examples=60, deadline=None)
    def test_hidden_anywhere_is_hidden(self, org_hidden, team_hidden,
                                       user_hidden):
        custom = Customization()
        custom.org.hidden |= org_hidden
        custom.team_layer("t").hidden |= team_hidden
        custom.user_layer("u").hidden |= user_hidden
        visible = {
            p.name
            for p in custom.effective_providers(
                _SPEC, "overview", user_id="u", team_id="t"
            )
        }
        assert visible == set(_NAMES) - org_hidden - team_hidden - user_hidden

    @given(order=name_orders, hidden=name_sets)
    @settings(max_examples=60, deadline=None)
    def test_order_is_permutation_of_visible(self, order, hidden):
        custom = Customization()
        custom.user_layer("u").hidden |= hidden
        if order:
            custom.user_layer("u").set_order(order)
        result = [
            p.name
            for p in custom.effective_providers(_SPEC, "overview",
                                                user_id="u")
        ]
        assert sorted(result) == sorted(set(_NAMES) - hidden)
        assert len(result) == len(set(result))  # no duplicates ever

    @given(order=name_orders)
    @settings(max_examples=40, deadline=None)
    def test_ordered_prefix_respected(self, order):
        custom = Customization()
        if order:
            custom.user_layer("u").set_order(order)
        result = [
            p.name
            for p in custom.effective_providers(_SPEC, "overview",
                                                user_id="u")
        ]
        # visible ordered names appear first, in the given order
        prefix = [n for n in order if n in result]
        assert result[: len(prefix)] == prefix

    @given(team_order=name_orders, user_order=name_orders)
    @settings(max_examples=40, deadline=None)
    def test_most_specific_order_wins(self, team_order, user_order):
        custom = Customization()
        if team_order:
            custom.team_layer("t").set_order(team_order)
        if user_order:
            custom.user_layer("u").set_order(user_order)
        result = [
            p.name
            for p in custom.effective_providers(
                _SPEC, "overview", user_id="u", team_id="t"
            )
        ]
        winning = user_order or team_order
        prefix = [n for n in winning if n in result]
        assert result[: len(prefix)] == prefix

    @given(hidden=name_sets)
    @settings(max_examples=30, deadline=None)
    def test_layers_do_not_leak_across_scopes(self, hidden):
        custom = Customization()
        custom.user_layer("u1").hidden |= hidden
        other = {
            p.name
            for p in custom.effective_providers(_SPEC, "overview",
                                                user_id="u2")
        }
        assert other == set(_NAMES)
