"""Tests for session search history and saved searches."""

import pytest

from repro.errors import ConfigurationError


class TestHistory:
    def test_history_in_order(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.search("badged: endorsed")
        session.search("type: table")
        assert session.search_history() == [
            "badged: endorsed", "type: table",
        ]

    def test_history_starts_empty(self, tiny_app):
        assert tiny_app.session("u-ann").search_history() == []

    def test_history_is_copy(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.search("orders")
        history = session.search_history()
        history.clear()
        assert session.search_history() == ["orders"]


class TestSavedSearches:
    def test_save_last_and_rerun(self, tiny_app):
        session = tiny_app.session("u-ann")
        first = session.search("badged: endorsed")
        session.save_search("endorsed stuff")
        rerun = session.run_saved("endorsed stuff")
        assert rerun.artifact_ids() == first.artifact_ids()

    def test_save_explicit_query(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.save_search("tables", query="type: table")
        assert session.saved_searches() == {"tables": "type: table"}
        assert session.run_saved("tables").total == 3

    def test_save_without_query_raises(self, tiny_app):
        session = tiny_app.session("u-ann")
        with pytest.raises(ConfigurationError, match="no query"):
            session.save_search("empty")

    def test_run_unknown_saved_raises(self, tiny_app):
        session = tiny_app.session("u-ann")
        with pytest.raises(ConfigurationError, match="no saved search"):
            session.run_saved("ghost")

    def test_rerun_reflects_catalog_changes(self, tiny_app):
        session = tiny_app.session("u-ann")
        session.save_search("endorsed", query="badged: endorsed")
        before = session.run_saved("endorsed").total
        tiny_app.store.grant_badge("t-web", "endorsed", "u-bob")
        after = session.run_saved("endorsed").total
        assert after == before + 1
