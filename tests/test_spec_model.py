"""Tests for the specification data model."""

import pytest

from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.errors import UnknownProviderError
from repro.providers.base import InputSpec, Representation


def provider(name="p", **overrides):
    defaults = dict(
        name=name,
        endpoint=f"catalog://{name}",
        representation="list",
    )
    defaults.update(overrides)
    return ProviderSpec(**defaults)


class TestRankingWeight:
    def test_empty_field_rejected(self):
        with pytest.raises(ValueError):
            RankingWeight(field="", weight=1.0)


class TestVisibility:
    def test_surfaces(self):
        assert Visibility().surfaces() == ("overview", "exploration", "search")
        assert Visibility.nowhere().surfaces() == ()
        assert Visibility(overview=True, exploration=False,
                          search=False).surfaces() == ("overview",)


class TestProviderSpec:
    def test_name_slugified(self):
        assert provider(name="Owned By!").name == "owned_by"

    def test_title_defaults_from_name(self):
        assert provider(name="owned_by").title == "Owned By"

    def test_search_field_defaults_to_name(self):
        assert provider(name="badged").search_field == "badged"

    def test_search_field_none_disables(self):
        assert provider(search_field=None).search_field is None

    def test_representation_coerced(self):
        assert provider(representation="graph").representation is Representation.GRAPH

    def test_required_optional_split(self):
        spec = provider(inputs=(
            InputSpec("a", "user", required=True),
            InputSpec("b", "team", required=False),
        ))
        assert [i.name for i in spec.required_inputs()] == ["a"]
        assert [i.name for i in spec.optional_inputs()] == ["b"]

    def test_input_named(self):
        spec = provider(inputs=(InputSpec("a", "user"),))
        assert spec.input_named("a").input_type == "user"
        assert spec.input_named("z") is None

    def test_is_ready(self):
        spec = provider(inputs=(
            InputSpec("a", "user", required=True),
            InputSpec("b", "team", required=False),
        ))
        assert spec.is_ready({"a": "u-1"})
        assert not spec.is_ready({})
        assert not spec.is_ready({"a": ""})
        assert not spec.is_ready({"b": "t-1"})

    def test_with_ranking_replaces(self):
        spec = provider(ranking=(RankingWeight("views", 1.0),))
        updated = spec.with_ranking(RankingWeight("favorite", 2.0))
        assert [w.field for w in updated.ranking] == ["favorite"]
        assert [w.field for w in spec.ranking] == ["views"]


class TestHumboldtSpec:
    @pytest.fixture
    def spec3(self):
        return HumboldtSpec(providers=(
            provider("alpha", category="interaction"),
            provider("beta", category="relatedness",
                     visibility=Visibility(overview=False, exploration=True,
                                           search=True)),
            provider("gamma", category="interaction", search_field=None),
        ))

    def test_container_protocol(self, spec3):
        assert len(spec3) == 3
        assert "beta" in spec3
        assert "zeta" not in spec3
        assert [p.name for p in spec3] == ["alpha", "beta", "gamma"]

    def test_provider_lookup(self, spec3):
        assert spec3.provider("beta").category == "relatedness"
        with pytest.raises(UnknownProviderError):
            spec3.provider("zeta")

    def test_categories_first_appearance_order(self, spec3):
        assert spec3.categories() == ["interaction", "relatedness"]

    def test_by_category(self, spec3):
        assert [p.name for p in spec3.by_category("interaction")] == [
            "alpha", "gamma",
        ]

    def test_visible_in(self, spec3):
        assert [p.name for p in spec3.visible_in("overview")] == [
            "alpha", "gamma",
        ]
        with pytest.raises(ValueError):
            spec3.visible_in("sidebar")

    def test_search_fields_skips_disabled(self, spec3):
        fields = spec3.search_fields()
        assert set(fields) == {"alpha", "beta"}  # gamma opted out

    def test_effective_ranking_fallback(self):
        spec = HumboldtSpec(
            providers=(
                provider("with", ranking=(RankingWeight("views", 2.0),)),
                provider("without"),
            ),
            global_ranking=(RankingWeight("favorite", 4.3),),
        )
        assert spec.effective_ranking("with")[0].field == "views"
        assert spec.effective_ranking("without")[0].field == "favorite"

    def test_with_provider_appends(self, spec3):
        updated = spec3.with_provider(provider("delta"))
        assert len(updated) == 4
        assert len(spec3) == 3  # original untouched

    def test_with_provider_replaces_in_place(self, spec3):
        updated = spec3.with_provider(provider("beta", category="changed"))
        assert updated.provider_names() == spec3.provider_names()
        assert updated.provider("beta").category == "changed"

    def test_without_provider(self, spec3):
        updated = spec3.without_provider("beta")
        assert "beta" not in updated
        with pytest.raises(UnknownProviderError):
            spec3.without_provider("zeta")

    def test_with_global_ranking(self, spec3):
        updated = spec3.with_global_ranking(RankingWeight("views", 1.0))
        assert updated.global_ranking[0].field == "views"
        assert spec3.global_ranking == ()

    def test_with_custom(self, spec3):
        updated = spec3.with_custom("key", {"a": 1})
        assert updated.custom == {"key": {"a": 1}}
        assert spec3.custom == {}
