"""The streaming write path: event log, coalescing, delta patching.

Covers the write-ahead :class:`~repro.catalog.events.EventLog` (offset
addressing, bounded truncation), the coalescing
:class:`~repro.catalog.events.EventStream` and
:meth:`~repro.catalog.store.CatalogStore.record_events` (one version
bump per batch), the typed records every store mutator appends, the
execution engine's delta-patch sweep (patch / decline / hard-drop and
the ``delta_patches`` / ``delta_fallbacks`` / ``coalesced_bumps``
counters), incremental sorted-id and usage-snapshot maintenance, the
sqlite write-ahead journal mirror, and — the headline guarantee,
extending ``test_invalidation`` — hypothesis properties that a
delta-patched cache entry is indistinguishable from drop-and-refetch
under random write/read interleavings.
"""

from __future__ import annotations

import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.domains import (
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
    DOMAIN_USAGE,
)
from repro.catalog.events import (
    EntitiesEventRecord,
    EventLog,
    EventStream,
    LineageEventRecord,
    MembershipEventRecord,
    OpaqueEventRecord,
    UsageEventRecord,
)
from repro.catalog.model import Artifact, ArtifactType, Team, User, UsageEvent
from repro.catalog.store import CatalogStore
from repro.catalog.usage import UsageLog
from repro.errors import UnknownEntityError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import ExecutionEngine, ExecutionPolicy
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.util.clock import SimulationClock


def _seeded_store(n: int = 6) -> CatalogStore:
    clock = SimulationClock()
    clock.advance(days=30)
    store = CatalogStore(clock=clock)
    store.add_user(User(id="u1", name="Ann", team_ids=("t1",)))
    store.add_user(User(id="u2", name="Bob", team_ids=("t1",)))
    store.add_user(User(id="u3", name="Cyd", team_ids=("t2",)))
    store.add_team(Team(id="t1", name="Alpha",
                        admin_ids=("u1",), member_ids=("u1", "u2")))
    store.add_team(Team(id="t2", name="Beta",
                        admin_ids=("u3",), member_ids=("u3",)))
    for i in range(n):
        store.add_artifact(Artifact(
            id=f"a{i}", name=f"ART {i}",
            artifact_type=ArtifactType.TABLE if i % 2 == 0
            else ArtifactType.DASHBOARD,
            owner_id="u1" if i % 2 == 0 else "u2",
            team_ids=("t1",),
        ))
    return store


def _engine(store, patchers: bool = True):
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store),
                              patchers=patchers)
    engine = ExecutionEngine(
        registry,
        store=store,
        policy=ExecutionPolicy.defaults().replace(cache_ttl_s=3600.0),
        clock=store.clock,
    )
    return registry, engine


def _events(store, *users_artifacts_actions) -> list[UsageEvent]:
    now = store.clock.now()
    return [
        UsageEvent(artifact_id=aid, user_id=uid, action=action, timestamp=now)
        for aid, uid, action in users_artifacts_actions
    ]


# -- the event log ----------------------------------------------------------


class TestEventLog:
    def test_append_and_since_round_trip(self):
        log = EventLog(capacity=16)
        assert log.offset == 0
        records = [EntitiesEventRecord(f"a{i}") for i in range(3)]
        offsets = [log.append(r) for r in records]
        assert offsets == [0, 1, 2]
        got, next_offset, truncated = log.since(0)
        assert got == tuple(records)
        assert next_offset == 3 and not truncated
        # Reading from the frontier returns nothing, not truncation.
        got, next_offset, truncated = log.since(3)
        assert got == () and next_offset == 3 and not truncated

    def test_since_partial(self):
        log = EventLog(capacity=16)
        for i in range(5):
            log.append(EntitiesEventRecord(f"a{i}"))
        got, next_offset, truncated = log.since(3)
        assert [r.artifact_id for r in got] == ["a3", "a4"]
        assert next_offset == 5 and not truncated

    def test_truncation_signalled(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.append(EntitiesEventRecord(f"a{i}"))
        # Offset 2 predates the retained window of the last 4 records.
        got, next_offset, truncated = log.since(2)
        assert truncated and got == () and next_offset == 10
        # The frontier is readable again after the fallback.
        got, _, truncated = log.since(next_offset)
        assert not truncated and got == ()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_pre_horizon_offset_on_empty_log_reports_truncated(self):
        # Regression: with the log drained empty, a stale consumer
        # offset used to read as caught-up instead of truncated.
        log = EventLog(capacity=4)
        for i in range(6):
            log.append(EntitiesEventRecord(f"a{i}"))
        assert log.truncate() == 4
        assert len(log) == 0
        got, next_offset, truncated = log.since(3)
        assert truncated and got == () and next_offset == 6
        # The well-defined `next` is immediately usable.
        got, _, truncated = log.since(next_offset)
        assert not truncated and got == ()

    def test_truncate_on_empty_log_is_a_no_op(self):
        log = EventLog(capacity=4)
        assert log.truncate() == 0
        got, next_offset, truncated = log.since(0)
        assert not truncated and got == () and next_offset == 0

    def test_append_after_truncate_keeps_offsets_monotonic(self):
        log = EventLog(capacity=4)
        for i in range(3):
            log.append(EntitiesEventRecord(f"a{i}"))
        log.truncate()
        assert log.append(EntitiesEventRecord("b0")) == 3
        got, next_offset, truncated = log.since(3)
        assert [r.artifact_id for r in got] == ["b0"]
        assert next_offset == 4 and not truncated
        # Pre-truncation offsets still read as lost, not as "b0".
        got, _, truncated = log.since(1)
        assert truncated and got == ()

    def test_foreign_offset_beyond_frontier_reports_truncated(self):
        log = EventLog(capacity=4)
        log.append(EntitiesEventRecord("a0"))
        got, next_offset, truncated = log.since(7)
        assert truncated and got == () and next_offset == 1


# -- the coalescing stream --------------------------------------------------


class TestEventStream:
    def test_batch_flushes_at_max_batch(self):
        store = _seeded_store()
        before = store.domain_version(DOMAIN_USAGE)
        stream = store.stream(window_s=3600.0, max_batch=4)
        for i in range(3):
            stream.record("a0", "u1", "view")
        assert stream.pending == 3
        assert store.domain_version(DOMAIN_USAGE) == before  # invisible
        assert store.usage_stats("a0").view_count == 0
        stream.record("a0", "u1", "view")  # fills the batch
        assert stream.pending == 0
        assert store.usage_stats("a0").view_count == 4
        # One bump for the whole batch.
        assert store.domain_version(DOMAIN_USAGE) == before + 1
        assert store.coalesced_bumps == 3

    def test_window_expiry_flushes(self):
        store = _seeded_store()
        fake_now = [0.0]
        stream = EventStream(store, window_s=0.5, max_batch=1000,
                             timer=lambda: fake_now[0])
        stream.record("a0", "u1", "view")
        fake_now[0] = 0.4
        stream.record("a0", "u2", "view")
        assert stream.pending == 2  # window still open
        fake_now[0] = 0.6
        stream.record("a0", "u1", "open")  # window closed: flush all 3
        assert stream.pending == 0
        assert store.usage_stats("a0").view_count == 2
        assert store.usage_stats("a0").open_count == 1

    def test_explicit_flush_and_context_manager(self):
        store = _seeded_store()
        with store.stream(window_s=3600.0) as stream:
            stream.record("a1", "u1", "favorite")
            assert stream.flush() == 1
            assert stream.flush() == 0
            stream.record("a1", "u2", "favorite")
        # Context exit drained the buffer.
        assert store.usage_stats("a1").favorite_count == 2

    def test_rejects_bad_max_batch(self):
        store = _seeded_store()
        with pytest.raises(ValueError):
            EventStream(store, max_batch=0)


class TestRecordEvents:
    def test_batch_bumps_once_and_counts_saved_bumps(self):
        store = _seeded_store()
        before = store.domain_version(DOMAIN_USAGE)
        store.record_events(_events(
            store, ("a0", "u1", "view"), ("a1", "u2", "view"),
            ("a0", "u1", "open"),
        ))
        assert store.domain_version(DOMAIN_USAGE) == before + 1
        assert store.coalesced_bumps == 2
        # All three events landed in the write-ahead log.
        records, _, _ = store.events.since(0)
        usage = [r for r in records if isinstance(r, UsageEventRecord)]
        assert len(usage) == 3

    def test_empty_batch_is_a_no_op(self):
        store = _seeded_store()
        before = store.domain_version(DOMAIN_USAGE)
        store.record_events([])
        assert store.domain_version(DOMAIN_USAGE) == before
        assert store.coalesced_bumps == 0

    def test_batch_validates_every_event_up_front(self):
        store = _seeded_store()
        before = store.domain_version(DOMAIN_USAGE)
        bad = _events(store, ("a0", "u1", "view"), ("nope", "u1", "view"))
        with pytest.raises(UnknownEntityError):
            store.record_events(bad)
        # Nothing was applied: validation precedes the fold.
        assert store.usage_stats("a0").view_count == 0
        assert store.domain_version(DOMAIN_USAGE) == before

    def test_record_many_matches_sequential_record(self):
        store = _seeded_store()
        events = _events(
            store, ("a0", "u1", "view"), ("a0", "u2", "favorite"),
            ("a0", "u2", "unfavorite"), ("a1", "u1", "edit"),
        )
        sequential = UsageLog()
        for event in events:
            sequential.record(event)
        batched = UsageLog()
        batched.record_many(events)
        for aid in ("a0", "a1"):
            assert batched.stats(aid) == sequential.stats(aid)
        assert batched.events() == sequential.events()


# -- which mutators log which records ---------------------------------------


class TestMutatorRecords:
    def _last(self, store):
        records, _, _ = store.events.since(0)
        return records[-1]

    def test_mutator_event_records(self):
        store = _seeded_store(n=2)
        store.record("a0", "u1", "view")
        record = self._last(store)
        assert isinstance(record, UsageEventRecord)
        assert record.event.artifact_id == "a0"
        assert record.domain == DOMAIN_USAGE

        store.add_artifact(Artifact(id="a9", name="NEW",
                                    artifact_type=ArtifactType.TABLE))
        record = self._last(store)
        assert record == EntitiesEventRecord("a9", added=True)

        store.grant_badge("a0", "endorsed", "u1")
        record = self._last(store)
        assert record == EntitiesEventRecord("a0", added=False)

        store.add_user(User(id="u9", name="New"))
        assert self._last(store) == MembershipEventRecord("user", "u9")

        store.set_team(Team(id="t1", name="Alpha", member_ids=("u2",)))
        record = self._last(store)
        assert record == MembershipEventRecord("team", "t1", added=False)
        assert record.domain == DOMAIN_MEMBERSHIP

        store.lineage.add_edge("a0", "a9", "derives")
        record = self._last(store)
        assert record == LineageEventRecord("a0", "a9", "derives")
        assert record.domain == DOMAIN_LINEAGE

    def test_restore_logs_opaque_records(self):
        store = _seeded_store(n=2)
        store.restore_domain_versions({DOMAIN_USAGE: 41})
        records, _, _ = store.events.since(0)
        opaque = [r for r in records if isinstance(r, OpaqueEventRecord)]
        assert [r.domain for r in opaque] == [DOMAIN_USAGE]
        assert opaque[0].reason == "restore"


# -- incremental sorted-id memo ---------------------------------------------


class TestIncrementalArtifactIds:
    def test_incremental_equals_rebuild(self):
        store = _seeded_store(n=5)
        assert store.artifact_ids() == sorted(f"a{i}" for i in range(5))
        store.add_artifact(Artifact(id="a-new", name="X",
                                    artifact_type=ArtifactType.TABLE))
        store.add_artifact(Artifact(id="zz", name="Y",
                                    artifact_type=ArtifactType.TABLE))
        assert store.artifact_ids() == sorted(
            [f"a{i}" for i in range(5)] + ["a-new", "zz"]
        )

    def test_adds_patch_without_backend_rescan(self, monkeypatch):
        store = _seeded_store(n=4)
        store.artifact_ids()  # prime the memo
        calls = []
        original = store._backend.artifact_ids
        monkeypatch.setattr(
            store._backend, "artifact_ids",
            lambda: calls.append(1) or original(),
        )
        store.add_artifact(Artifact(id="a7", name="X",
                                    artifact_type=ArtifactType.TABLE))
        ids = store.artifact_ids()
        assert "a7" in ids and ids == sorted(ids)
        assert calls == []  # served from the patched memo

    def test_non_entity_writes_keep_memo(self, monkeypatch):
        store = _seeded_store(n=4)
        before = store.artifact_ids()
        calls = []
        original = store._backend.artifact_ids
        monkeypatch.setattr(
            store._backend, "artifact_ids",
            lambda: calls.append(1) or original(),
        )
        store.record("a0", "u1", "view")
        store.lineage.add_edge("a0", "a1")
        assert store.artifact_ids() == before
        assert calls == []


# -- incremental usage snapshot (FieldResolver) -----------------------------


class TestIncrementalUsageSnapshot:
    def test_patched_snapshot_matches_fresh_resolver(self):
        store = _seeded_store()
        resolver = FieldResolver(store)
        fields = ("views", "opens", "favorite", "unique_viewers", "recency")
        ids = store.artifact_ids()
        resolver.values_batch(ids, fields)  # prime
        store.record_events(_events(
            store, ("a0", "u1", "view"), ("a0", "u2", "view"),
            ("a1", "u1", "favorite"),
        ))
        store.record("a2", "u3", "open")
        got = resolver.values_batch(ids, fields)
        fresh = FieldResolver(store).values_batch(ids, fields)
        assert got == fresh

    def test_usage_writes_patch_without_full_rescan(self, monkeypatch):
        store = _seeded_store()
        resolver = FieldResolver(store)
        resolver.values_batch(store.artifact_ids(), ("views",))  # prime
        rescans = []
        original = store.usage.all_stats
        monkeypatch.setattr(
            store.usage, "all_stats",
            lambda: rescans.append(1) or original(),
        )
        store.record("a0", "u1", "view")
        column = resolver.values_batch(["a0", "a1"], ("views",))["views"]
        assert column == [1.0, 0.0]
        assert rescans == []  # only a0's row was re-derived

    def test_restore_forces_full_rebuild(self):
        store = _seeded_store()
        resolver = FieldResolver(store)
        resolver.values_batch(store.artifact_ids(), ("views",))
        store.record("a0", "u1", "view")
        store.restore_domain_versions(
            {DOMAIN_USAGE: store.domain_version(DOMAIN_USAGE) + 10}
        )
        got = resolver.values_batch(["a0"], ("views",))["views"]
        assert got == [1.0]


# -- the engine's delta-patch sweep -----------------------------------------


def _req(user="u1", team="t1", **inputs):
    return ProviderRequest(
        inputs=inputs, context=RequestContext(user_id=user, team_id=team)
    )


class TestEngineDeltaPatching:
    def test_usage_write_patches_instead_of_dropping(self):
        store = _seeded_store()
        store.record("a0", "u1", "view")
        registry, engine = _engine(store)
        request = ProviderRequest(
            inputs={"user": "u1"}, context=RequestContext(user_id="u1")
        )
        engine.execute("catalog://recents", request)
        # A write by an unrelated user on an unlisted artifact: the
        # patcher proves the entry unaffected and keeps it cached.
        store.record("a3", "u3", "view")
        outcome = engine.execute("catalog://recents", request)
        assert outcome.fresh
        totals = engine.stats.snapshot()["totals"]
        assert totals["delta_patches"] == 1
        assert totals["delta_fallbacks"] == 0
        assert totals["invalidations"] == 0
        assert totals["calls"] == 1  # no refetch happened

    def test_patched_entry_equals_refetch(self):
        store = _seeded_store()
        store.record("a0", "u1", "view")
        registry, engine = _engine(store)
        request = ProviderRequest(
            inputs={"user": "u1"}, context=RequestContext(user_id="u1")
        )
        engine.execute("catalog://recents", request)
        # A write *by the requesting user* must show up on the next read.
        store.record("a2", "u1", "view")
        served = engine.execute("catalog://recents", request).result
        fresh = registry.resolve("catalog://recents")(request)
        assert served == fresh
        assert "a2" in served.artifact_ids()

    def test_non_monotonic_membership_falls_back_to_drop(self):
        store = _seeded_store()
        registry, engine = _engine(store)
        request = ProviderRequest(inputs={"team": "t1"})
        engine.execute("catalog://team_docs", request)
        store.set_team(Team(id="t1", name="Alpha", member_ids=("u2",)))
        served = engine.execute("catalog://team_docs", request).result
        assert served == registry.resolve("catalog://team_docs")(request)
        totals = engine.stats.snapshot()["totals"]
        assert totals["delta_fallbacks"] == 1
        assert totals["invalidations"] == 1

    def test_hard_domain_still_drops(self):
        store = _seeded_store()
        registry, engine = _engine(store)
        request = ProviderRequest(context=RequestContext(user_id="u1"))
        engine.execute("catalog://newest", request)
        store.add_artifact(Artifact(id="a-hot", name="HOT",
                                    artifact_type=ArtifactType.TABLE))
        served = engine.execute("catalog://newest", request).result
        assert "a-hot" in served.artifact_ids()
        totals = engine.stats.snapshot()["totals"]
        assert totals["delta_patches"] == 0
        assert totals["invalidations"] >= 1

    def test_lineage_patch_keeps_unrelated_entry(self):
        store = _seeded_store()
        store.lineage.add_edge("a0", "a2")
        registry, engine = _engine(store)
        request = ProviderRequest(inputs={"artifact": "a0"})
        engine.execute("catalog://lineage", request)
        # An edge in a disjoint component cannot affect a0's tree.
        store.lineage.add_edge("a1", "a3")
        outcome = engine.execute("catalog://lineage", request)
        totals = engine.stats.snapshot()["totals"]
        assert totals["delta_patches"] == 1
        assert totals["calls"] == 1
        # An edge extending a0's tree must appear.
        store.lineage.add_edge("a2", "a4")
        served = engine.execute("catalog://lineage", request).result
        assert "a4" in served.artifact_ids()
        assert served == registry.resolve("catalog://lineage")(request)

    def test_coalesced_bumps_mirrored_into_stats(self):
        store = _seeded_store()
        registry, engine = _engine(store)
        request = ProviderRequest(
            inputs={"user": "u1"}, context=RequestContext(user_id="u1")
        )
        engine.execute("catalog://recents", request)
        store.record_events(_events(
            store, *[("a0", "u2", "view")] * 5
        ))
        engine.execute("catalog://recents", request)
        assert engine.stats.coalesced_bumps == 4
        assert "coalesced version bumps: 4" in engine.stats.render()
        assert "coalesced version bumps: 4" in engine.render_health()

    def test_without_patchers_every_dependent_write_drops(self):
        store = _seeded_store()
        registry, engine = _engine(store, patchers=False)
        request = ProviderRequest(
            inputs={"user": "u1"}, context=RequestContext(user_id="u1")
        )
        engine.execute("catalog://recents", request)
        store.record("a3", "u3", "view")
        engine.execute("catalog://recents", request)
        totals = engine.stats.snapshot()["totals"]
        assert totals["delta_patches"] == 0
        assert totals["invalidations"] == 1
        assert totals["calls"] == 2  # dropped entry forced a refetch

    def test_stats_columns_render(self):
        store = _seeded_store()
        registry, engine = _engine(store)
        table = engine.stats.render()
        assert "patch" in table and "dfall" in table
        health = engine.render_health()
        assert "patch" in health and "dfall" in health


# -- sqlite write-ahead journal mirror --------------------------------------


class TestSqliteJournal:
    def test_events_journalled_on_flush(self, tmp_path):
        path = tmp_path / "catalog.db"
        store = CatalogStore.open(path)
        store.add_user(User(id="u1", name="Ann"))
        store.add_artifact(Artifact(id="a0", name="X",
                                    artifact_type=ArtifactType.TABLE))
        store.record("a0", "u1", "view")
        store.flush()
        with sqlite3.connect(path) as conn:
            rows = conn.execute(
                "SELECT domain, kind FROM catalog_events ORDER BY seq"
            ).fetchall()
        kinds = [kind for _, kind in rows]
        assert "MembershipEventRecord" in kinds
        assert "EntitiesEventRecord" in kinds
        assert "UsageEventRecord" in kinds
        assert rows[-1][0] == DOMAIN_USAGE
        store.close()

    def test_compact_prunes_journal(self, tmp_path):
        path = tmp_path / "catalog.db"
        store = CatalogStore.open(path)
        store.add_user(User(id="u1", name="Ann"))
        store.add_artifact(Artifact(id="a0", name="X",
                                    artifact_type=ArtifactType.TABLE))
        store.flush()
        assert store._backend.info()["stored"]["catalog_events"] > 0
        store.compact()
        assert store._backend.info()["stored"]["catalog_events"] == 0
        # The journal is a durability mirror, not the source of truth:
        # state survives compaction.
        store.close()
        reopened = CatalogStore.open(path)
        assert reopened.has_artifact("a0")
        reopened.close()


# -- no-stale properties (the PR 2 gate, extended) --------------------------

#: ``(uri, request, ordered)`` spanning every patchable dependency set.
#: ``ordered`` marks endpoints whose declared dependencies cover their
#: ranking inputs, so even the *order* of a cached answer must track a
#: fresh fetch.  ``owned_by``/``team_docs`` rank by usage aggregates they
#: deliberately do not depend on (PR 2's advisory-drift contract), so
#: for them only the membership set is oracle-checked.
_PROP_REQUESTS = (
    ("catalog://recents",
     ProviderRequest(inputs={"user": "u1"},
                     context=RequestContext(user_id="u1")), True),
    ("catalog://favorites",
     ProviderRequest(inputs={"user": "u2"},
                     context=RequestContext(user_id="u2")), True),
    ("catalog://most_viewed",
     ProviderRequest(context=RequestContext(user_id="u3")), True),
    ("catalog://team_popular",
     ProviderRequest(inputs={"team": "t1"},
                     context=RequestContext(user_id="u1", team_id="t1")),
     True),
    ("catalog://owned_by",
     ProviderRequest(inputs={"user": "u1"}), False),
    ("catalog://team_docs", ProviderRequest(inputs={"team": "t1"}), False),
    ("catalog://lineage", ProviderRequest(inputs={"artifact": "a0"}), True),
    ("catalog://lineage_graph",
     ProviderRequest(inputs={"artifact": "a1"}), True),
)


def _assert_matches_oracle(served, fresh, ordered, label):
    if ordered:
        assert served.artifact_ids() == fresh.artifact_ids(), label
    else:
        assert set(served.artifact_ids()) == set(fresh.artifact_ids()), label

_ACTIONS = ("view", "open", "edit", "favorite")


def _op_strategy():
    batch = st.tuples(
        st.just("batch"),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 2),
                      st.integers(0, 3)),
            min_size=1, max_size=4,
        ),
    )
    single = st.tuples(st.just("record"), st.integers(0, 5),
                       st.integers(0, 2), st.integers(0, 3))
    stream_put = st.tuples(st.just("stream"), st.integers(0, 5),
                           st.integers(0, 2))
    flush = st.tuples(st.just("flush"))
    set_team = st.tuples(st.just("set_team"),
                         st.lists(st.integers(0, 2), max_size=3))
    badge = st.tuples(st.just("badge"), st.integers(0, 5))
    edge = st.tuples(st.just("edge"), st.integers(0, 5), st.integers(0, 5))
    fetch = st.tuples(st.just("fetch"),
                      st.integers(0, len(_PROP_REQUESTS) - 1))
    return st.lists(
        st.one_of(batch, single, stream_put, flush, set_team, badge,
                  edge, fetch),
        min_size=1, max_size=24,
    )


def _apply_op(store, stream, op):
    kind = op[0]
    if kind == "batch":
        store.record_events(_events(store, *[
            (f"a{a}", f"u{u + 1}", _ACTIONS[act]) for a, u, act in op[1]
        ]))
    elif kind == "record":
        store.record(f"a{op[1]}", f"u{op[2] + 1}", _ACTIONS[op[3]])
    elif kind == "stream":
        stream.record(f"a{op[1]}", f"u{op[2] + 1}", "view")
    elif kind == "flush":
        stream.flush()
    elif kind == "set_team":
        members = tuple(dict.fromkeys(f"u{u + 1}" for u in op[1]))
        store.set_team(Team(id="t1", name="Alpha", member_ids=members))
    elif kind == "badge":
        store.grant_badge(f"a{op[1]}", "endorsed", "u1")
    elif kind == "edge":
        src, dst = f"a{op[1]}", f"a{op[2]}"
        if op[1] < op[2]:  # ascending ids keep the graph acyclic
            try:
                store.lineage.add_edge(src, dst, "derives")
            except Exception:
                pass  # duplicate edge etc.


class TestNoStaleUnderStreamingWrites:
    @settings(max_examples=40, deadline=None)
    @given(ops=_op_strategy())
    def test_patched_cache_identical_to_drop_and_refetch(self, ops):
        """The tentpole guarantee, stated operationally: a patch-enabled
        engine and a drop-and-refetch engine fed the identical write/read
        interleaving over one store (frozen clock) serve *structurally
        equal* results for every request — the delta-patched cache entry
        is byte-for-byte what dropping and refetching would have
        produced.  Additionally, each answer's membership and order must
        equal a fresh provider fetch (PR 2's no-stale gate)."""
        store = _seeded_store()
        registry, patch_engine = _engine(store, patchers=True)
        _, drop_engine = _engine(store, patchers=False)
        stream = store.stream(window_s=3600.0, max_batch=64)
        for uri, request, _ in _PROP_REQUESTS:  # warm both caches
            patch_engine.execute(uri, request)
            drop_engine.execute(uri, request)
        for op in ops:
            _apply_op(store, stream, op)
            if op[0] == "fetch":
                uri, request, ordered = _PROP_REQUESTS[op[1]]
                patched = patch_engine.execute(uri, request).result
                dropped = drop_engine.execute(uri, request).result
                assert patched == dropped, (uri, op)
                fresh = registry.resolve(uri)(request)
                _assert_matches_oracle(patched, fresh, ordered, (uri, op))
        # Quiesce: flush the stream, then every cached answer agrees.
        stream.flush()
        for uri, request, ordered in _PROP_REQUESTS:
            patched = patch_engine.execute(uri, request).result
            assert patched == drop_engine.execute(uri, request).result, uri
            fresh = registry.resolve(uri)(request)
            _assert_matches_oracle(patched, fresh, ordered, uri)

    @settings(max_examples=25, deadline=None)
    @given(ops=_op_strategy(), hours=st.integers(1, 48))
    def test_membership_never_stale_under_advancing_clock(self, ops, hours):
        """With the clock advancing between writes, time-derived advisory
        fields may drift inside the TTL (exactly as for a plain cache
        hit), but the *membership and order* of every answer still equals
        a fresh fetch."""
        store = _seeded_store()
        registry, engine = _engine(store)
        stream = store.stream(window_s=3600.0, max_batch=64)
        for uri, request, _ in _PROP_REQUESTS:
            engine.execute(uri, request)
        for index, op in enumerate(ops):
            if index % 3 == 0:
                store.clock.advance(seconds=hours * 3600.0)
            _apply_op(store, stream, op)
            if op[0] == "fetch":
                uri, request, ordered = _PROP_REQUESTS[op[1]]
                served = engine.execute(uri, request).result
                fresh = registry.resolve(uri)(request)
                _assert_matches_oracle(served, fresh, ordered, (uri, op))
        stream.flush()
        for uri, request, ordered in _PROP_REQUESTS:
            served = engine.execute(uri, request).result
            fresh = registry.resolve(uri)(request)
            _assert_matches_oracle(served, fresh, ordered, uri)
