"""Unit tests for the usage log and its aggregates."""

from repro.catalog.model import UsageEvent
from repro.catalog.usage import UsageLog


def ev(artifact, user, action, ts):
    return UsageEvent(artifact, user, action, ts)


class TestAggregates:
    def test_views_and_recency(self):
        log = UsageLog()
        log.record(ev("a", "u1", "view", 10.0))
        log.record(ev("a", "u2", "view", 20.0))
        log.record(ev("a", "u1", "view", 5.0))
        stats = log.stats("a")
        assert stats.view_count == 3
        assert stats.last_viewed_at == 20.0
        assert stats.unique_viewers == 2

    def test_unknown_artifact_zero_stats(self):
        stats = UsageLog().stats("ghost")
        assert stats.view_count == 0
        assert stats.unique_viewers == 0

    def test_favorite_idempotent(self):
        log = UsageLog()
        log.record(ev("a", "u1", "favorite", 1.0))
        log.record(ev("a", "u1", "favorite", 2.0))
        assert log.stats("a").favorite_count == 1

    def test_unfavorite(self):
        log = UsageLog()
        log.record(ev("a", "u1", "favorite", 1.0))
        log.record(ev("a", "u1", "unfavorite", 2.0))
        stats = log.stats("a")
        assert stats.favorite_count == 0
        assert "u1" not in stats.favorited_by

    def test_unfavorite_without_favorite_is_noop(self):
        log = UsageLog()
        log.record(ev("a", "u1", "unfavorite", 1.0))
        assert log.stats("a").favorite_count == 0

    def test_edit_and_open_counted(self):
        log = UsageLog()
        log.record(ev("a", "u1", "edit", 1.0))
        log.record(ev("a", "u1", "open", 2.0))
        stats = log.stats("a")
        assert stats.edit_count == 1
        assert stats.open_count == 1
        assert stats.last_edited_at == 1.0


class TestQueries:
    def test_recent_for_user_ordering(self):
        log = UsageLog()
        log.record(ev("a", "u1", "view", 10.0))
        log.record(ev("b", "u1", "view", 30.0))
        log.record(ev("c", "u1", "view", 20.0))
        log.record(ev("d", "u2", "view", 99.0))  # different user
        assert log.recent_for_user("u1") == ["b", "c", "a"]

    def test_recent_for_user_limit(self):
        log = UsageLog()
        for index in range(5):
            log.record(ev(f"a{index}", "u1", "view", float(index)))
        assert len(log.recent_for_user("u1", limit=2)) == 2

    def test_recent_for_user_latest_touch_wins(self):
        log = UsageLog()
        log.record(ev("a", "u1", "view", 10.0))
        log.record(ev("b", "u1", "view", 20.0))
        log.record(ev("a", "u1", "edit", 30.0))
        assert log.recent_for_user("u1") == ["a", "b"]

    def test_favorites_of(self):
        log = UsageLog()
        log.record(ev("b", "u1", "favorite", 1.0))
        log.record(ev("a", "u1", "favorite", 2.0))
        log.record(ev("c", "u2", "favorite", 3.0))
        assert log.favorites_of("u1") == ["a", "b"]

    def test_most_viewed(self):
        log = UsageLog()
        for _ in range(3):
            log.record(ev("hot", "u1", "view", 1.0))
        log.record(ev("cold", "u1", "view", 1.0))
        assert log.most_viewed() == [("hot", 3), ("cold", 1)]

    def test_most_viewed_tie_breaks_on_id(self):
        log = UsageLog()
        log.record(ev("b", "u1", "view", 1.0))
        log.record(ev("a", "u1", "view", 1.0))
        assert log.most_viewed() == [("a", 1), ("b", 1)]

    def test_views_by_users_restricts(self):
        log = UsageLog()
        log.record(ev("a", "u1", "view", 1.0))
        log.record(ev("a", "u2", "view", 2.0))
        log.record(ev("b", "u2", "view", 3.0))
        counts = log.views_by_users({"u2"})
        assert counts == {"a": 1, "b": 1}

    def test_len_counts_events(self):
        log = UsageLog()
        log.record(ev("a", "u1", "view", 1.0))
        log.record(ev("a", "u1", "open", 2.0))
        assert len(log) == 2
        assert len(log.events()) == 2
