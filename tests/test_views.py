"""Tests for view models and the view factory."""

import pytest

from repro.core.ranking import Ranker
from repro.core.spec.model import ProviderSpec, RankingWeight
from repro.core.views.base import make_card, view_id_for
from repro.core.views.factory import ViewFactory
from repro.core.views.listing import ListView
from repro.errors import RepresentationError
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.fields import FieldResolver
from repro.providers.suite import default_spec


@pytest.fixture
def factory(tiny_store, spec):
    return ViewFactory(tiny_store, spec, Ranker(FieldResolver(tiny_store)))


def fetch(providers, name, inputs=None, user="", limit=20):
    request = ProviderRequest(
        inputs=dict(inputs or {}),
        context=RequestContext(user_id=user, limit=limit),
    )
    return providers.endpoints()[name](request)


class TestCards:
    def test_make_card_resolves_owner(self, tiny_store):
        card = make_card(tiny_store, "t-orders", score=1.5)
        assert card.name == "ORDERS"
        assert card.owner_name == "Ann Lee"
        assert card.view_count == 7
        assert card.badges == ("endorsed",)
        assert card.score == 1.5

    def test_view_id_stable(self):
        assert view_id_for("similar", {"artifact": "a", "z": "1"}) == \
            "similar[artifact=a,z=1]"
        assert view_id_for("recents", {}) == "recents"


class TestFactoryListing:
    def test_list_view_ranked_by_listing1(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "of_type",
                       {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result,
                             inputs={"artifact_type": "table"})
        assert isinstance(view, ListView)
        # global Listing 1 weights: t-orders (1 fav, 7 views) first
        assert view.artifact_ids()[0] == "t-orders"
        assert view.cards[0].score > view.cards[-1].score

    def test_limit_truncates_after_live_ranking(
        self, factory, tiny_providers, spec
    ):
        # The provider returns full membership even when asked for 2;
        # the factory slices the display limit after live re-ranking.
        result = fetch(tiny_providers, "of_type",
                       {"artifact_type": "table"}, limit=2)
        assert len(result.items) == 3
        view = factory.build(spec.provider("of_type"), result,
                             inputs={"artifact_type": "table"}, limit=2)
        assert view.artifact_ids() == ["t-orders", "t-customers"]

    def test_tiles_view_rows(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "most_viewed")
        view = factory.build(spec.provider("most_viewed"), result)
        rows = view.rows()
        assert all(len(row) <= view.columns_per_row for row in rows)

    def test_provider_ranking_overrides_global(self, tiny_store,
                                               tiny_providers):
        spec = default_spec().with_provider(
            default_spec().provider("of_type").with_ranking(
                RankingWeight("freshness", 100.0)
            )
        )
        factory = ViewFactory(tiny_store, spec,
                              Ranker(FieldResolver(tiny_store)))
        result = fetch(tiny_providers, "of_type", {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result)
        assert view.artifact_ids()[0] == "t-web"  # newest table

    def test_representation_mismatch_rejected(self, factory, tiny_providers,
                                              spec):
        graph_result = fetch(tiny_providers, "joinable",
                             {"artifact": "t-orders"})
        with pytest.raises(RepresentationError, match="declares"):
            factory.build(spec.provider("recents"), graph_result)


class TestFactoryOtherShapes:
    def test_hierarchy(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "lineage", {"artifact": "t-orders"})
        view = factory.build(spec.provider("lineage"), result)
        assert view.max_depth() == 3
        assert view.artifact_ids()[0] == "t-orders"

    def test_graph(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "joinable", {"artifact": "t-orders"})
        view = factory.build(spec.provider("joinable"), result)
        assert "t-customers" in view.artifact_ids()
        assert view.neighbors("t-orders") == ["t-customers"]

    def test_graph_layout_deterministic(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "joinable", {"artifact": "t-orders"})
        view = factory.build(spec.provider("joinable"), result)
        assert view.layout() == view.layout()

    def test_categories_with_previews(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "types")
        view = factory.build(spec.provider("types"), result)
        tables = view.group("table")
        assert tables.total == 3
        assert tables.preview[0].artifact_id == "t-orders"  # ranked preview
        assert view.group("nonexistent") is None

    def test_embedding(self, factory, tiny_providers, spec, tiny_store):
        result = fetch(tiny_providers, "embedding_map")
        view = factory.build(spec.provider("embedding_map"), result)
        assert len(view.points) == tiny_store.artifact_count
        min_x, min_y, max_x, max_y = view.bounds()
        assert max_x > min_x

    def test_embedding_nearest(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "embedding_map")
        view = factory.build(spec.provider("embedding_map"), result)
        nearest = view.nearest("t-orders", k=2)
        assert len(nearest) == 2
        assert all(p.card.artifact_id != "t-orders" for p in nearest)
        assert view.nearest("ghost") == []


class TestFiltering:
    def test_list_filtered(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "of_type", {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result)
        filtered = view.filtered({"t-web"})
        assert filtered.artifact_ids() == ["t-web"]
        assert view.count() == 3  # original untouched

    def test_hierarchy_filter_keeps_ancestors(self, factory, tiny_providers,
                                              spec):
        result = fetch(tiny_providers, "lineage", {"artifact": "t-orders"})
        view = factory.build(spec.provider("lineage"), result)
        filtered = view.filtered({"d-sales"})
        # the path t-orders -> v-orders -> d-sales must survive
        assert filtered.artifact_ids() == ["t-orders", "v-orders", "d-sales"]

    def test_hierarchy_filter_drops_dead_branches(self, factory,
                                                  tiny_providers, spec):
        result = fetch(tiny_providers, "lineage", {"artifact": "t-orders"})
        view = factory.build(spec.provider("lineage"), result)
        assert view.filtered(set()).roots == ()

    def test_graph_filter_drops_dangling_edges(self, factory, tiny_providers,
                                               spec):
        result = fetch(tiny_providers, "joinable", {"artifact": "t-orders"})
        view = factory.build(spec.provider("joinable"), result)
        filtered = view.filtered({"t-orders"})
        assert filtered.edges == ()

    def test_categories_filter_recounts(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "types")
        view = factory.build(spec.provider("types"), result)
        filtered = view.filtered({"t-web", "w-q1"})
        assert filtered.group("table").total == 1
        assert filtered.group("dashboard") is None  # emptied out

    def test_embedding_filter(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "embedding_map")
        view = factory.build(spec.provider("embedding_map"), result)
        filtered = view.filtered({"t-web"})
        assert filtered.artifact_ids() == ["t-web"]


class TestListSorting:
    def test_sorted_by_name(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "of_type", {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result)
        by_name = view.sorted_by("name")
        names = [c.name for c in by_name.cards]
        assert names == sorted(names)

    def test_sorted_by_views_descending_semantics(self, factory,
                                                  tiny_providers, spec):
        result = fetch(tiny_providers, "of_type", {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result)
        by_views = view.sorted_by("views")
        counts = [c.view_count for c in by_views.cards]
        assert counts == sorted(counts, reverse=True)

    def test_unknown_column(self, factory, tiny_providers, spec):
        result = fetch(tiny_providers, "of_type", {"artifact_type": "table"})
        view = factory.build(spec.provider("of_type"), result)
        with pytest.raises(ValueError, match="unknown column"):
            view.sorted_by("color")
