"""Tests for the keyword-search and hardcoded-UI baselines."""

import pytest

from repro.baselines.hardcoded import TOUCH_POINTS, HardcodedDiscoveryUI
from repro.baselines.keyword import KeywordSearchBaseline


class TestKeywordBaseline:
    def test_conjunctive_matching(self, tiny_store):
        baseline = KeywordSearchBaseline(tiny_store)
        hits = baseline.search("sales dashboard")
        assert [h.artifact_id for h in hits] == ["d-sales"]

    def test_ranked_by_relevance(self, tiny_store):
        baseline = KeywordSearchBaseline(tiny_store)
        hits = baseline.search("orders")
        assert hits
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_no_match(self, tiny_store):
        assert KeywordSearchBaseline(tiny_store).search("xylophone") == []

    def test_empty_query(self, tiny_store):
        assert KeywordSearchBaseline(tiny_store).search("") == []

    def test_rank_of(self, tiny_store):
        baseline = KeywordSearchBaseline(tiny_store)
        assert baseline.rank_of("customer dimension", "t-customers") == 1
        assert baseline.rank_of("customer dimension", "t-web") is None

    def test_cannot_express_metadata_constraints(self, tiny_store):
        """The motivating limitation: no way to say badged:endorsed."""
        baseline = KeywordSearchBaseline(tiny_store)
        hits = baseline.search("endorsed")
        # 'endorsed' is a badge, not text, so plain keyword search misses
        # every endorsed artifact.
        assert hits == []


class TestHardcodedBaseline:
    def test_views_match_generated_equivalents(self, tiny_store, tiny_app):
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        generated = tiny_app.interface.open_view("most_viewed",
                                                 user_id="u-ann")
        assert (hardcoded.view_most_viewed().artifact_ids()
                == generated.artifact_ids())

    def test_recents_equivalent_content(self, tiny_store, tiny_app):
        # Same artifacts; ordering policy differs by design (the generated
        # view ranks with spec weights, the hardcoded one is frozen).
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        generated = tiny_app.interface.open_view("recents", user_id="u-dee")
        assert (set(hardcoded.view_recents("u-dee").artifact_ids())
                == set(generated.artifact_ids()))

    def test_search_dispatch(self, tiny_store):
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        assert hardcoded.search("badged", "endorsed") == [
            "t-orders", "d-sales",
        ]
        assert hardcoded.search("type", "workbook") == ["w-q1"]
        assert hardcoded.search("owned_by", "Ann Lee")

    def test_unknown_field_silently_fails(self, tiny_store):
        """The hardcoded failure mode Humboldt's compile step prevents."""
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        assert hardcoded.search("badged_by", "Bob Ray") == []

    def test_autocomplete_is_stale_by_design(self, tiny_store, tiny_app):
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        hand_kept = set(hardcoded.FIELD_NAMES)
        generated = set(tiny_app.interface.language.field_names())
        # the hand-kept list lags the actual capability surface
        assert hand_kept < generated

    def test_home_enumerates_three_views(self, tiny_store):
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        assert len(hardcoded.home("u-ann")) == 3

    def test_change_cost_accounting(self):
        sites = HardcodedDiscoveryUI.change_cost_add_source()
        assert set(sites) == {
            "view method", "home() registration", "search dispatch",
            "autocomplete list", "ranking literals",
        }
        assert all(loc >= 1 for loc in sites.values())
        assert HardcodedDiscoveryUI.touched_sites() == len(TOUCH_POINTS)

    def test_ranking_matches_listing1_weights(self, tiny_store):
        hardcoded = HardcodedDiscoveryUI(tiny_store)
        # 4.3 * favorites + 1.5 * views for t-orders
        assert hardcoded._rank("t-orders") == pytest.approx(4.3 + 1.5 * 7)
