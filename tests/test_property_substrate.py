"""Property-based tests for substrate invariants: MinHash accuracy,
store index consistency, spec serialization, ranking monotonicity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.model import Artifact, BadgeAssignment, Column
from repro.catalog.store import CatalogStore
from repro.catalog.usage import UsageLog
from repro.catalog.model import UsageEvent
from repro.core.ranking import Ranker
from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.core.spec.serialization import spec_from_dict, spec_to_dict
from repro.metadata.sketches import MinHasher, exact_jaccard
from repro.providers.base import InputSpec
from repro.providers.fields import FieldResolver
from repro.util.ids import slugify

# -- MinHash accuracy ---------------------------------------------------------

value_sets = st.sets(
    st.text(alphabet="abcdefghij0123456789", min_size=1, max_size=6),
    min_size=5,
    max_size=60,
)

_HASHER = MinHasher(num_perm=256)


class TestMinHashProperties:
    @given(left=value_sets, right=value_sets)
    @settings(max_examples=60, deadline=None)
    def test_estimate_within_tolerance(self, left, right):
        exact = exact_jaccard(left, right)
        estimate = _HASHER.signature(left).jaccard(_HASHER.signature(right))
        # 256 permutations: std error ~ sqrt(j(1-j)/256) <= 0.032; allow 5x
        assert abs(estimate - exact) <= 0.17

    @given(values=value_sets)
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_is_one(self, values):
        signature = _HASHER.signature(values)
        assert signature.jaccard(signature) == 1.0

    @given(left=value_sets, right=value_sets)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, left, right):
        a = _HASHER.signature(left)
        b = _HASHER.signature(right)
        assert a.jaccard(b) == b.jaccard(a)


# -- store index consistency ------------------------------------------------------

slug_texts = st.text(alphabet="abcdefghij _-", min_size=1, max_size=12)

artifact_dicts = st.fixed_dictionaries({
    "name": st.text(alphabet="ABCDEFGH_ ", min_size=1, max_size=12),
    "artifact_type": st.sampled_from(
        ["table", "workbook", "dashboard", "visualization"]
    ),
    "tags": st.lists(
        st.sampled_from(["sales", "hr", "ops", "ml"]), max_size=3,
        unique=True,
    ),
    "badge": st.sampled_from([None, "endorsed", "certified"]),
})


class TestStoreIndexProperties:
    @given(specs=st.lists(artifact_dicts, min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_indexes_agree_with_scan(self, specs):
        from repro.catalog.model import User

        store = CatalogStore()
        store.add_user(User(id="u", name="U"))
        for index, data in enumerate(specs):
            badges = ()
            if data["badge"]:
                badges = (BadgeAssignment(data["badge"], "u", 1.0),)
            store.add_artifact(Artifact(
                id=f"a-{index:03d}",
                name=data["name"],
                artifact_type=data["artifact_type"],
                owner_id="u",
                tags=tuple(data["tags"]),
                badges=badges,
                created_at=1.0,
            ))
        # type index == scan
        for artifact_type in ("table", "workbook", "dashboard",
                              "visualization"):
            scanned = sorted(
                a.id for a in store.artifacts()
                if a.artifact_type.value == artifact_type
            )
            assert store.by_type(artifact_type) == scanned
        # badge index == scan
        for badge in ("endorsed", "certified"):
            scanned = sorted(
                a.id for a in store.artifacts() if a.has_badge(badge)
            )
            assert store.by_badge(badge) == scanned
        # tag index == scan
        for tag in ("sales", "hr", "ops", "ml"):
            scanned = sorted(
                a.id for a in store.artifacts() if tag in a.tags
            )
            assert store.by_tag(tag) == scanned


events = st.lists(
    st.tuples(
        st.sampled_from(["a1", "a2", "a3"]),
        st.sampled_from(["u1", "u2"]),
        st.sampled_from(["view", "favorite", "unfavorite", "edit", "open"]),
        st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    ),
    max_size=40,
)


class TestUsageProperties:
    @given(sequence=events)
    @settings(max_examples=50, deadline=None)
    def test_favorite_count_matches_set(self, sequence):
        log = UsageLog()
        for artifact, user, action, ts in sequence:
            log.record(UsageEvent(artifact, user, action, ts))
        for artifact in ("a1", "a2", "a3"):
            stats = log.stats(artifact)
            assert stats.favorite_count == len(stats.favorited_by)
            assert stats.favorite_count >= 0

    @given(sequence=events)
    @settings(max_examples=50, deadline=None)
    def test_view_count_matches_event_count(self, sequence):
        log = UsageLog()
        for artifact, user, action, ts in sequence:
            log.record(UsageEvent(artifact, user, action, ts))
        for artifact in ("a1", "a2", "a3"):
            expected = sum(
                1 for a, _, action, _ in sequence
                if a == artifact and action == "view"
            )
            assert log.stats(artifact).view_count == expected


# -- spec serialization round-trip ------------------------------------------------

provider_specs = st.builds(
    ProviderSpec,
    name=slug_texts.map(slugify),
    endpoint=slug_texts.map(lambda s: f"catalog://{slugify(s)}"),
    representation=st.sampled_from(
        ["list", "tiles", "graph", "hierarchy", "categories", "embedding"]
    ),
    category=st.sampled_from(["interaction", "annotation", "relatedness"]),
    description=st.text(max_size=30),
    inputs=st.lists(
        st.builds(
            InputSpec,
            name=st.sampled_from(["user", "team", "artifact", "q"]),
            input_type=st.sampled_from(
                ["user", "team", "artifact", "badge", "text"]
            ),
            required=st.booleans(),
        ),
        max_size=2,
        unique_by=lambda i: i.name,
    ).map(tuple),
    visibility=st.builds(
        Visibility,
        overview=st.booleans(),
        exploration=st.booleans(),
        search=st.booleans(),
    ),
    ranking=st.lists(
        st.builds(
            RankingWeight,
            field=st.sampled_from(["views", "favorite", "recency"]),
            weight=st.floats(min_value=-10, max_value=10,
                             allow_nan=False),
        ),
        max_size=3,
    ).map(tuple),
)

humboldt_specs = st.builds(
    HumboldtSpec,
    providers=st.lists(
        provider_specs, max_size=5, unique_by=lambda p: p.name
    ).map(tuple),
    global_ranking=st.lists(
        st.builds(
            RankingWeight,
            field=st.sampled_from(["views", "favorite"]),
            weight=st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        max_size=2,
    ).map(tuple),
)


class TestSpecSerializationProperty:
    @given(spec=humboldt_specs)
    @settings(max_examples=100, deadline=None)
    def test_round_trip_identity(self, spec):
        assert spec_from_dict(spec_to_dict(spec)) == spec


# -- ranking monotonicity -------------------------------------------------------------


class TestRankingProperties:
    @given(
        weight=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        views_low=st.integers(min_value=0, max_value=50),
        delta=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_more_views_never_rank_lower(self, weight, views_low, delta):
        from repro.catalog.model import User

        store = CatalogStore()
        store.add_user(User(id="u", name="U"))
        store.add_artifact(Artifact(id="low", name="L",
                                    artifact_type="table", owner_id="u",
                                    created_at=1.0))
        store.add_artifact(Artifact(id="high", name="H",
                                    artifact_type="table", owner_id="u",
                                    created_at=1.0))
        for index in range(views_low):
            store.record("low", "u", "view", at=10.0 + index)
        for index in range(views_low + delta):
            store.record("high", "u", "view", at=10.0 + index)
        ranker = Ranker(FieldResolver(store))
        ranked = ranker.rank_ids(
            ["low", "high"], [RankingWeight("views", weight)]
        )
        assert ranked[0].artifact_id == "high"
