"""Round-trip tests for catalog persistence."""

import json

import pytest

from repro.catalog.persistence import (
    FORMAT_VERSION,
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.errors import CatalogError


class TestRoundTrip:
    def test_entities_survive(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "catalog.json")
        loaded = load_catalog(path)
        assert loaded.artifact_count == tiny_store.artifact_count
        assert loaded.user_count == tiny_store.user_count
        assert loaded.team_count == tiny_store.team_count
        assert loaded.artifact_ids() == tiny_store.artifact_ids()

    def test_artifact_details_survive(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        orders = loaded.artifact("t-orders")
        original = tiny_store.artifact("t-orders")
        assert orders.name == original.name
        assert orders.columns == original.columns
        assert orders.badges == original.badges
        assert orders.tags == original.tags
        assert orders.created_at == original.created_at

    def test_usage_and_indexes_rebuilt(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert (
            loaded.usage_stats("t-orders").view_count
            == tiny_store.usage_stats("t-orders").view_count
        )
        assert loaded.by_badge("endorsed") == tiny_store.by_badge("endorsed")
        assert loaded.by_owner("u-ann") == tiny_store.by_owner("u-ann")

    def test_lineage_survives(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert loaded.lineage.edges() == tiny_store.lineage.edges()

    def test_clock_restored(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert loaded.clock.now() == tiny_store.clock.now()
        assert loaded.clock.epoch == tiny_store.clock.epoch

    def test_double_round_trip_is_stable(self, tiny_store, tmp_path):
        once = catalog_to_dict(tiny_store)
        twice = catalog_to_dict(catalog_from_dict(once))
        assert once == twice

    def test_search_and_index_sizes_match_fresh_rebuild(self, tiny_store,
                                                        tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        for token in ("orders", "revenue", "the"):
            assert loaded.search_tokens([token]) == \
                tiny_store.search_tokens([token])
        for kind, key in [("type", "table"), ("badge", "endorsed"),
                          ("owner", "u-ann"), ("token", "orders")]:
            assert loaded.index_size(kind, key) == \
                tiny_store.index_size(kind, key), (kind, key)


class TestVersionCounters:
    """Format v2 round-trips the per-domain mutation counters, so engine
    caches keyed on ``(domain, version)`` stay coherent across a reload."""

    def test_v2_payload_carries_counters(self, tiny_store):
        payload = catalog_to_dict(tiny_store)
        assert payload["domain_versions"] == tiny_store.domain_versions
        assert payload["total_version"] == tiny_store.version

    def test_reloaded_counters_never_regress(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        for domain, counter in tiny_store.domain_versions.items():
            assert loaded.domain_version(domain) >= counter, domain
        assert loaded.version >= tiny_store.version

    def test_v1_payload_loads_with_conservative_full_bump(self, tiny_store):
        payload = catalog_to_dict(tiny_store)
        payload["version"] = 1
        del payload["domain_versions"]
        del payload["total_version"]
        legacy = catalog_from_dict(payload)

        # Reference: the same records loaded with no counter restoration.
        reference_payload = dict(payload, version=FORMAT_VERSION)
        reference = catalog_from_dict(reference_payload)

        # Content is identical...
        assert legacy.artifact_ids() == reference.artifact_ids()
        # ...but every domain got exactly one extra conservative bump.
        for domain, counter in reference.domain_versions.items():
            assert legacy.domain_version(domain) == counter + 1, domain


class TestFormat:
    def test_unknown_version_rejected(self, tiny_store):
        payload = catalog_to_dict(tiny_store)
        payload["version"] = 99
        with pytest.raises(CatalogError, match="version"):
            catalog_from_dict(payload)

    def test_file_is_valid_json(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "c.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == FORMAT_VERSION
        assert len(payload["artifacts"]) == 6

    def test_save_creates_parent_dirs(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "deep" / "dir" / "c.json")
        assert path.exists()


class TestSegments:
    """Segmented JSON-stream export (see repro.catalog.segments)."""

    def _export(self, tiny_store, tmp_path, records=3):
        from repro.catalog.segments import export_segments

        return export_segments(tiny_store, tmp_path / "seg",
                               segment_records=records)

    def test_round_trip(self, tiny_store, tmp_path):
        from repro.catalog.segments import import_segments

        self._export(tiny_store, tmp_path)
        rebuilt = import_segments(tmp_path / "seg")
        assert rebuilt.artifact_ids() == tiny_store.artifact_ids()
        assert rebuilt.user_count == tiny_store.user_count
        assert len(rebuilt.usage) == len(tiny_store.usage)
        assert rebuilt.lineage.edges() == tiny_store.lineage.edges()
        assert rebuilt.clock.now() == tiny_store.clock.now()
        for domain, counter in tiny_store.domain_versions.items():
            assert rebuilt.domain_version(domain) >= counter, domain

    def test_segments_are_bounded(self, tiny_store, tmp_path):
        import json as _json

        self._export(tiny_store, tmp_path, records=2)
        manifest = _json.loads(
            (tmp_path / "seg" / "manifest.json").read_text()
        )
        entities = manifest["streams"]["entities"]
        assert len(entities["segments"]) >= 3  # 6 artifacts / 2 per segment
        assert all(s["records"] <= 2 for s in entities["segments"])

    def test_reexport_skips_unchanged_segments(self, tiny_store, tmp_path):
        self._export(tiny_store, tmp_path)
        mtimes = {
            p.name: p.stat().st_mtime_ns
            for p in (tmp_path / "seg").iterdir()
            if p.name != "manifest.json"
        }
        self._export(tiny_store, tmp_path)
        for p in (tmp_path / "seg").iterdir():
            if p.name != "manifest.json":
                assert p.stat().st_mtime_ns == mtimes[p.name], p.name

    def test_unknown_manifest_format_rejected(self, tiny_store, tmp_path):
        import json as _json

        from repro.catalog.segments import import_segments

        self._export(tiny_store, tmp_path)
        manifest_path = tmp_path / "seg" / "manifest.json"
        payload = _json.loads(manifest_path.read_text())
        payload["format"] = 99
        manifest_path.write_text(_json.dumps(payload))
        with pytest.raises(CatalogError, match="format"):
            import_segments(tmp_path / "seg")

    def test_import_into_persistent_store(self, tiny_store, tmp_path):
        from repro.catalog.segments import import_segments
        from repro.catalog.store import CatalogStore

        self._export(tiny_store, tmp_path)
        with CatalogStore.open(tmp_path / "catalog.db") as target:
            import_segments(tmp_path / "seg", store=target)
        with CatalogStore.open(tmp_path / "catalog.db") as reloaded:
            assert reloaded.artifact_ids() == tiny_store.artifact_ids()
            assert reloaded.by_badge("endorsed") == \
                tiny_store.by_badge("endorsed")
