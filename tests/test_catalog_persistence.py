"""Round-trip tests for catalog persistence."""

import json

import pytest

from repro.catalog.persistence import (
    catalog_from_dict,
    catalog_to_dict,
    load_catalog,
    save_catalog,
)
from repro.errors import CatalogError


class TestRoundTrip:
    def test_entities_survive(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "catalog.json")
        loaded = load_catalog(path)
        assert loaded.artifact_count == tiny_store.artifact_count
        assert loaded.user_count == tiny_store.user_count
        assert loaded.team_count == tiny_store.team_count
        assert loaded.artifact_ids() == tiny_store.artifact_ids()

    def test_artifact_details_survive(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        orders = loaded.artifact("t-orders")
        original = tiny_store.artifact("t-orders")
        assert orders.name == original.name
        assert orders.columns == original.columns
        assert orders.badges == original.badges
        assert orders.tags == original.tags
        assert orders.created_at == original.created_at

    def test_usage_and_indexes_rebuilt(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert (
            loaded.usage_stats("t-orders").view_count
            == tiny_store.usage_stats("t-orders").view_count
        )
        assert loaded.by_badge("endorsed") == tiny_store.by_badge("endorsed")
        assert loaded.by_owner("u-ann") == tiny_store.by_owner("u-ann")

    def test_lineage_survives(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert loaded.lineage.edges() == tiny_store.lineage.edges()

    def test_clock_restored(self, tiny_store, tmp_path):
        loaded = load_catalog(save_catalog(tiny_store, tmp_path / "c.json"))
        assert loaded.clock.now() == tiny_store.clock.now()
        assert loaded.clock.epoch == tiny_store.clock.epoch

    def test_double_round_trip_is_stable(self, tiny_store, tmp_path):
        once = catalog_to_dict(tiny_store)
        twice = catalog_to_dict(catalog_from_dict(once))
        assert once == twice


class TestFormat:
    def test_unknown_version_rejected(self, tiny_store):
        payload = catalog_to_dict(tiny_store)
        payload["version"] = 99
        with pytest.raises(CatalogError, match="version"):
            catalog_from_dict(payload)

    def test_file_is_valid_json(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "c.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert len(payload["artifacts"]) == 6

    def test_save_creates_parent_dirs(self, tiny_store, tmp_path):
        path = save_catalog(tiny_store, tmp_path / "deep" / "dir" / "c.json")
        assert path.exists()
