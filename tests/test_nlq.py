"""Tests for natural-language translation and query explanation (§8)."""

import pytest

from repro.core.query.ast import FieldTerm, Not, Or, ProviderCall, TextTerm
from repro.core.query.nlq import NaturalLanguageTranslator, explain
from repro.core.query.parser import parse_query
from repro.errors import QueryCompileError


@pytest.fixture
def translator(study_app):
    return NaturalLanguageTranslator(
        study_app.interface.language, study_app.store
    )


class TestTranslation:
    def test_motivating_sentence(self, translator, study_app):
        """§1: 'find the tables created by Alex and endorsed by Mike that
        contain sales numbers'."""
        translation = translator.translate(
            "find the tables created by Alex and endorsed by Mike "
            "that contain sales numbers"
        )
        result, _ = study_app.interface.search(
            translation.query_text(), user_id="user-alex"
        )
        names = [study_app.store.artifact(a).name
                 for a in result.artifact_ids()]
        assert names == ["SALES_NUMBERS"]

    def test_ownership_patterns(self, translator):
        for verb in ("owned by", "created by", "made by", "authored by"):
            translation = translator.translate(f"tables {verb} Alex")
            terms = translation.node.iter_terms()
            field_terms = [t for t in terms if isinstance(t, FieldTerm)]
            assert any(
                t.field in ("owned_by", "created_by") and t.value == "Alex"
                for t in field_terms
            ), verb

    def test_quoted_name(self, translator):
        translation = translator.translate(
            'workbooks created by "John Doe"'
        )
        terms = translation.node.iter_terms()
        assert FieldTerm("created_by", "John Doe") in terms

    def test_badge_grant_pattern(self, translator):
        translation = translator.translate("endorsed by Mike")
        terms = translation.node.iter_terms()
        assert FieldTerm("badged", "endorsed") in terms
        assert FieldTerm("badged_by", "Mike") in terms

    def test_bare_badge_adjective(self, translator):
        translation = translator.translate("deprecated dashboards")
        terms = translation.node.iter_terms()
        assert FieldTerm("badged", "deprecated") in terms
        assert FieldTerm("type", "dashboard") in terms

    def test_type_words_singular_and_plural(self, translator):
        for phrase, expected in (("tables", "table"),
                                 ("a chart", "visualization"),
                                 ("workbooks", "workbook")):
            terms = translator.translate(phrase).node.iter_terms()
            assert FieldTerm("type", expected) in terms, phrase

    def test_multiple_types_become_or(self, translator):
        node = translator.translate("dashboards and workbooks").node
        ors = [t for t in [node] if isinstance(t, Or)]
        if not ors:  # Or may be nested under And
            ors = [c for c in getattr(node, "children", ()) if isinstance(c, Or)]
        assert ors
        values = {t.value for t in ors[0].children}
        assert values == {"dashboard", "workbook"}

    def test_similar_to_resolves_artifact(self, translator):
        node = translator.translate("similar to AIRLINES").node
        assert ProviderCall("similar", "table-airlines") in node.iter_terms()

    def test_similar_to_unresolved_falls_back_to_text(self, translator):
        node = translator.translate("similar to Bigfoot").node
        assert TextTerm("Bigfoot") in node.iter_terms()

    def test_recent_becomes_provider_call(self, translator):
        node = translator.translate("recent workbooks").node
        assert ProviderCall("recents") in node.iter_terms()

    def test_tagged_known_tag(self, translator):
        node = translator.translate("about sales").node
        assert FieldTerm("tagged", "sales") in node.iter_terms()

    def test_about_unknown_word_is_text(self, translator):
        node = translator.translate("about zeppelins").node
        assert TextTerm("zeppelins") in node.iter_terms()

    def test_stopwords_dropped(self, translator):
        translation = translator.translate("find me all the airline stats")
        assert "the" not in translation.residual
        assert "airline" in translation.residual

    def test_pure_keywords_degrade_to_text(self, translator):
        translation = translator.translate("quarterly revenue")
        assert translation.matched == ()
        assert set(translation.residual) == {"quarterly", "revenue"}

    def test_empty_raises(self, translator):
        with pytest.raises(QueryCompileError):
            translator.translate("   ")

    def test_only_stopwords_raises(self, translator):
        with pytest.raises(QueryCompileError):
            translator.translate("the of and")

    def test_query_text_is_parseable(self, translator):
        translation = translator.translate(
            "recent tables owned by Alex about sales"
        )
        assert parse_query(translation.query_text()) is not None

    def test_deterministic(self, translator):
        a = translator.translate("tables owned by Alex")
        b = translator.translate("tables owned by Alex")
        assert a.node == b.node


class TestExplain:
    def test_flagship(self):
        node = parse_query(
            "type: table owned_by: Alex badged: endorsed & 'sales'"
        )
        sentence = explain(node)
        assert sentence == (
            "artifacts of type table, owned by Alex, badged endorsed, "
            'matching "sales"'
        )

    def test_or_and_not(self):
        node = parse_query("badged: endorsed | !type: table")
        sentence = explain(node)
        assert "or" in sentence
        assert "not of type table" in sentence

    def test_provider_call(self):
        assert "from recent documents" in explain(
            parse_query(":recent_documents()")
        )

    def test_call_with_argument(self):
        assert "(x)" in explain(parse_query(":similar(x)"))

    def test_unknown_field_generic_phrase(self):
        sentence = explain(parse_query("quality_tier: gold"))
        assert "whose quality tier is gold" in sentence
