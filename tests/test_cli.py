"""Tests for the command-line interface."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.core.spec import spec_to_json
from repro.providers.suite import default_spec


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])


class TestSearch:
    def test_metadata_query(self):
        code, output = run_cli("search", "badged: endorsed AIRLINES")
        assert code == 0
        assert "AIRLINES" in output

    def test_nl_translation(self):
        code, output = run_cli(
            "search", "--nl", "tables owned by Alex endorsed by Mike"
        )
        assert code == 0
        assert "translated:" in output
        assert "owned_by: Alex" in output

    def test_no_results_exit_code(self):
        code, output = run_cli("search", "zzz_nothing_matches_zzz")
        assert code == 1
        assert "0 result(s)" in output

    def test_bad_query_error_exit(self):
        code, _ = run_cli("search", "bogus_field: x")
        assert code == 2

    def test_generated_catalog_options(self):
        code, output = run_cli("search", "type: table", "--tables", "20",
                               "--seed", "3", "--limit", "2")
        assert code == 0

    def test_explains_the_query(self):
        _, output = run_cli("search", "type: workbook")
        assert "of type workbook" in output


class TestSpec:
    def test_prints_default_spec(self):
        code, output = run_cli("spec")
        assert code == 0
        payload = json.loads(output)
        assert len(payload["providers"]) == len(default_spec())

    def test_validate_good_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(spec_to_json(default_spec()), encoding="utf-8")
        code, output = run_cli("spec", "--validate", str(path))
        assert code == 0
        assert "OK" in output

    def test_validate_bad_spec(self, tmp_path):
        payload = json.loads(spec_to_json(default_spec()))
        payload["providers"].append(dict(payload["providers"][0]))  # dup
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        code, output = run_cli("spec", "--validate", str(path))
        assert code == 1
        assert "INVALID" in output

    def test_lint_flag(self, tmp_path):
        import dataclasses

        spec = default_spec()
        # strip a description to trigger a lint warning
        stripped = spec.with_provider(
            dataclasses.replace(spec.provider("recents"), description="")
        )
        path = tmp_path / "spec.json"
        path.write_text(spec_to_json(stripped), encoding="utf-8")
        code, output = run_cli("spec", "--validate", str(path), "--lint")
        assert code == 0
        assert "WARN" in output
        assert "no description" in output

    def test_validate_malformed_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope", encoding="utf-8")
        code, _ = run_cli("spec", "--validate", str(path))
        assert code == 2


class TestGenerateAndLoad:
    def test_generate_then_search(self, tmp_path):
        catalog_path = tmp_path / "catalog.json"
        code, output = run_cli("generate", "--tables", "25",
                               "--out", str(catalog_path))
        assert code == 0
        assert catalog_path.exists()
        code, output = run_cli("search", "type: table",
                               "--catalog", str(catalog_path),
                               "--limit", "3")
        assert code == 0
        assert "table" in output


class TestDemoAndExport:
    def test_demo_runs(self):
        code, output = run_cli("demo", "--tables", "20")
        assert code == 0
        assert "catalog:" in output
        assert "query>" in output

    def test_export_writes_html(self, tmp_path):
        out_dir = tmp_path / "html"
        code, output = run_cli("export", "--tables", "20",
                               "--out", str(out_dir))
        assert code == 0
        assert (out_dir / "interface.html").exists()
        assert "wrote" in output


class TestStudy:
    def test_study_prints_report(self):
        code, output = run_cli("study")
        assert code == 0
        assert "E1 — Task outcomes" in output
        assert "E2 — Post-study questionnaire" in output


class TestHealth:
    def test_healthy_catalog_exits_zero(self):
        code, output = run_cli("health")
        assert code == 0
        assert "breaker" in output
        assert "closed" in output
        assert "degraded" not in output

    def test_stats_flag_appends_table(self):
        code, output = run_cli("health", "--stats")
        assert code == 0
        assert "execution stats:" in output
        assert "TOTAL" in output


class TestSearchBudget:
    def test_spent_budget_degrades_instead_of_failing(self):
        # A budget this small expires before any provider runs: every
        # fetch is skipped, the result is flagged, and the CLI reports
        # which providers degraded rather than erroring out.
        code, output = run_cli(
            "search", "badged: endorsed", "--budget-ms", "0.000001"
        )
        assert code == 1  # no results, but a clean degraded exit
        assert "DEGRADED" in output
        assert "skipped" in output

    def test_ample_budget_behaves_normally(self):
        code, output = run_cli(
            "search", "badged: endorsed AIRLINES", "--budget-ms", "60000"
        )
        assert code == 0
        assert "AIRLINES" in output
        assert "DEGRADED" not in output


class TestFederatedSearch:
    def test_federate_partitions_and_qualifies_ids(self):
        code, output = run_cli(
            "search", "badged: endorsed", "--federate", "3", "--limit", "5"
        )
        assert code == 0
        assert "federation: 3 members (cat0, cat1, cat2)" in output
        # Every printed entry is catalog-qualified.
        entry_lines = [
            line for line in output.splitlines()
            if line.startswith("  cat")
        ]
        assert entry_lines
        assert all(":" in line.split()[0] for line in entry_lines)

    def test_federate_needs_two_members(self):
        code, _ = run_cli("search", "orders", "--federate", "1")
        assert code == 2  # HumboldtError exit

    def test_federate_and_member_are_mutually_exclusive(self):
        code, _ = run_cli(
            "search", "orders", "--federate", "2", "--member", "a=b.db"
        )
        assert code == 2

    def test_nl_rejected_under_federation(self):
        code, _ = run_cli(
            "search", "--nl", "tables owned by Alex", "--federate", "2"
        )
        assert code == 2

    def test_member_spec_must_be_name_equals_path(self):
        code, _ = run_cli("search", "orders", "--member", "nonsense")
        assert code == 2

    def test_members_join_persistent_catalogs(self, tmp_path):
        for name in ("a", "b"):
            code, _ = run_cli(
                "catalog", "init", "--db", str(tmp_path / f"{name}.db"),
                "--tables", "12", "--events", "50", "--seed",
                "3" if name == "a" else "4",
            )
            assert code == 0
        code, output = run_cli(
            "search", "type: table",
            "--member", f"sales={tmp_path / 'a.db'}",
            "--member", f"ml={tmp_path / 'b.db'}",
            "--limit", "6",
        )
        assert code == 0
        assert "federation: 2 members (sales, ml)" in output
        assert "sales:" in output and "ml:" in output


class TestCatalogCommands:
    def _init(self, tmp_path, tables=30, events=200):
        db = tmp_path / "catalog.db"
        code, output = run_cli(
            "catalog", "init", "--db", str(db),
            "--tables", str(tables), "--events", str(events),
        )
        assert code == 0, output
        return db, output

    def test_init_creates_and_populates(self, tmp_path):
        db, output = self._init(tmp_path)
        assert db.exists()
        assert "synth:entities: applied" in output
        assert "synth:usage: applied" in output
        assert "initialised" in output

    def test_init_refuses_to_clobber_without_force(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, _ = run_cli("catalog", "init", "--db", str(db), "--tables", "30")
        assert code == 2  # HumboldtError exit
        code, output = run_cli(
            "catalog", "init", "--db", str(db),
            "--tables", "30", "--events", "200", "--force",
        )
        assert code == 0, output

    def test_reingest_same_config_skips(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, output = run_cli(
            "catalog", "ingest", "--db", str(db),
            "--tables", "30", "--events", "200",
        )
        assert code == 0
        assert "synth:entities: skipped" in output
        assert "synth:usage: skipped" in output

    def test_reingest_changed_config_fails_loudly(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, _ = run_cli(
            "catalog", "ingest", "--db", str(db),
            "--tables", "31", "--events", "200",
        )
        assert code == 2

    def test_info_reports_storage_and_fingerprints(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, output = run_cli("catalog", "info", "--db", str(db))
        assert code == 0
        assert "backend:  sqlite" in output
        assert "synth:entities" in output
        assert "versions:" in output

    def test_compact_runs(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, output = run_cli("catalog", "compact", "--db", str(db))
        assert code == 0
        assert "compacted" in output

    def test_search_against_persistent_store(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, output = run_cli(
            "search", "badged: endorsed", "--store", str(db)
        )
        assert code in (0, 1)  # result count depends on the badge draw
        assert "result(s)" in output

    def test_demo_against_persistent_store(self, tmp_path):
        db, _ = self._init(tmp_path)
        code, output = run_cli("demo", "--store", str(db))
        assert code == 0
        assert "catalog:" in output
