"""Tests for the spec linter (warnings, never blocking)."""

from repro.core.spec import lint_spec
from repro.core.spec.model import (
    HumboldtSpec,
    ProviderSpec,
    RankingWeight,
    Visibility,
)
from repro.providers.base import InputSpec
from repro.providers.suite import default_spec


def provider(name, **overrides):
    defaults = dict(name=name, endpoint=f"c://{name}",
                    representation="list", description=f"About {name}.")
    defaults.update(overrides)
    return ProviderSpec(**defaults)


GLOBAL = (RankingWeight("views", 1.0),)


class TestLint:
    def test_clean_spec_no_warnings(self):
        spec = HumboldtSpec(providers=(provider("a"),),
                            global_ranking=GLOBAL)
        assert lint_spec(spec) == []

    def test_missing_description_flagged(self):
        spec = HumboldtSpec(providers=(provider("a", description=""),),
                            global_ranking=GLOBAL)
        warnings = lint_spec(spec)
        assert any("no description" in w for w in warnings)

    def test_invisible_provider_flagged(self):
        spec = HumboldtSpec(
            providers=(provider("a", visibility=Visibility.nowhere(),
                                search_field=None),),
            global_ranking=GLOBAL,
        )
        assert any("not visible on any surface" in w for w in lint_spec(spec))

    def test_unrenderable_overview_flagged(self):
        spec = HumboldtSpec(
            providers=(provider(
                "a",
                inputs=(InputSpec("artifact", "artifact", required=True),),
                visibility=Visibility(overview=True, exploration=True,
                                      search=True),
            ),),
            global_ranking=GLOBAL,
        )
        assert any("never render" in w for w in lint_spec(spec))

    def test_ambient_inputs_not_flagged(self):
        spec = HumboldtSpec(
            providers=(provider(
                "a", inputs=(InputSpec("team", "team", required=True),),
            ),),
            global_ranking=GLOBAL,
        )
        assert not any("never render" in w for w in lint_spec(spec))

    def test_shared_endpoint_flagged(self):
        spec = HumboldtSpec(
            providers=(
                provider("a", endpoint="c://same"),
                provider("b", endpoint="c://same", search_field="bb"),
            ),
            global_ranking=GLOBAL,
        )
        assert any("shared by a, b" in w for w in lint_spec(spec))

    def test_missing_ranking_everywhere_flagged(self):
        spec = HumboldtSpec(providers=(provider("a"),))
        assert any("unranked" in w for w in lint_spec(spec))

    def test_disabled_search_field_flagged(self):
        spec = HumboldtSpec(
            providers=(provider("a", search_field=None),),
            global_ranking=GLOBAL,
        )
        assert any("search_field is disabled" in w for w in lint_spec(spec))

    def test_default_spec_is_lint_clean(self):
        """The shipped spec must not trip its own linter (the created_by
        alias uses its own endpoint URI, so no sharing warning)."""
        assert lint_spec(default_spec()) == []
