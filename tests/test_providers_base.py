"""Tests for provider envelopes, registry and field resolver."""

import pytest

from repro.errors import (
    DuplicateEntityError,
    ProviderError,
    RepresentationError,
)
from repro.providers.base import (
    Category,
    EmbeddingPoint,
    GraphEdge,
    HierarchyNode,
    InputSpec,
    ProviderRequest,
    ProviderResult,
    Representation,
    RequestContext,
    ScoredArtifact,
    list_result,
)
from repro.providers.fields import FieldResolver, _as_number
from repro.providers.registry import EndpointRegistry, parse_endpoint_uri


class TestRepresentation:
    def test_coerce_string(self):
        assert Representation.coerce("graph") is Representation.GRAPH

    def test_coerce_unknown(self):
        with pytest.raises(ValueError, match="unknown representation"):
            Representation.coerce("pie_chart")


class TestInputSpec:
    def test_valid_types(self):
        for t in ("artifact", "user", "team", "badge", "artifact_type", "text"):
            InputSpec(name="x", input_type=t)

    def test_invalid_type(self):
        with pytest.raises(ValueError, match="unknown input type"):
            InputSpec(name="x", input_type="number")


class TestProviderResult:
    def test_list_result_helper(self):
        result = list_result([ScoredArtifact("a")])
        assert result.representation is Representation.LIST
        assert result.artifact_ids() == ["a"]

    def test_list_result_rejects_graph(self):
        with pytest.raises(ValueError):
            list_result([], representation=Representation.GRAPH)

    def test_validate_rejects_mixed_payload(self):
        result = ProviderResult(
            representation=Representation.LIST,
            items=(ScoredArtifact("a"),),
            nodes=("a",),
        )
        with pytest.raises(RepresentationError):
            result.validate("p")

    def test_validate_rejects_dangling_edges(self):
        result = ProviderResult(
            representation=Representation.GRAPH,
            nodes=("a",),
            edges=(GraphEdge("a", "ghost"),),
        )
        with pytest.raises(RepresentationError, match="dangling|missing"):
            result.validate("p")

    def test_validate_accepts_clean_graph(self):
        ProviderResult(
            representation=Representation.GRAPH,
            nodes=("a", "b"),
            edges=(GraphEdge("a", "b"),),
        ).validate("p")

    def test_artifact_ids_flattens_hierarchy(self):
        tree = HierarchyNode(
            "root",
            children=(HierarchyNode("c1"), HierarchyNode("c2",
                      children=(HierarchyNode("g1"),))),
        )
        result = ProviderResult(
            representation=Representation.HIERARCHY, roots=(tree,)
        )
        assert result.artifact_ids() == ["root", "c1", "c2", "g1"]

    def test_artifact_ids_dedupes_preserving_order(self):
        result = ProviderResult(
            representation=Representation.CATEGORIES,
            categories=(
                Category("x", ("a", "b")),
                Category("y", ("b", "c")),
            ),
        )
        assert result.artifact_ids() == ["a", "b", "c"]

    def test_artifact_ids_from_points(self):
        result = ProviderResult(
            representation=Representation.EMBEDDING,
            points=(EmbeddingPoint("a", 0.0, 1.0),),
        )
        assert result.artifact_ids() == ["a"]

    def test_is_empty(self):
        assert ProviderResult(representation=Representation.LIST).is_empty()
        assert not list_result([ScoredArtifact("a")]).is_empty()

    def test_hierarchy_depth(self):
        tree = HierarchyNode("r", children=(HierarchyNode("c"),))
        assert tree.depth() == 2


class TestRegistry:
    def endpoint(self, request):
        return list_result([ScoredArtifact("a")])

    def test_uri_validation(self):
        assert parse_endpoint_uri("catalog://recents") == ("catalog", "recents")
        with pytest.raises(ValueError):
            parse_endpoint_uri("no-scheme")
        with pytest.raises(ValueError):
            parse_endpoint_uri("http://bad space")

    def test_register_and_fetch(self):
        registry = EndpointRegistry()
        registry.register("x://p", self.endpoint)
        result = registry.fetch("x://p", ProviderRequest())
        assert result.artifact_ids() == ["a"]

    def test_double_register_needs_replace(self):
        registry = EndpointRegistry()
        registry.register("x://p", self.endpoint)
        with pytest.raises(DuplicateEntityError):
            registry.register("x://p", self.endpoint)
        registry.register("x://p", self.endpoint, replace=True)

    def test_unregistered_fetch_raises(self):
        with pytest.raises(ProviderError, match="not registered"):
            EndpointRegistry().fetch("x://ghost", ProviderRequest())

    def test_fetch_validates_result_type(self):
        registry = EndpointRegistry()
        registry.register("x://bad", lambda req: ["not", "a", "result"])
        with pytest.raises(ProviderError, match="expected ProviderResult"):
            registry.fetch("x://bad", ProviderRequest())

    def test_fetch_validates_envelope(self):
        registry = EndpointRegistry()
        registry.register(
            "x://mixed",
            lambda req: ProviderResult(
                representation=Representation.LIST, nodes=("a",)
            ),
        )
        with pytest.raises(RepresentationError):
            registry.fetch("x://mixed", ProviderRequest())

    def test_iteration_sorted(self):
        registry = EndpointRegistry()
        registry.register("x://b", self.endpoint)
        registry.register("x://a", self.endpoint)
        assert list(registry) == ["x://a", "x://b"]

    def test_unregister(self):
        registry = EndpointRegistry()
        registry.register("x://p", self.endpoint)
        registry.unregister("x://p")
        assert "x://p" not in registry


class TestRequest:
    def test_input_default(self):
        request = ProviderRequest(inputs={"user": "u-1"})
        assert request.input("user") == "u-1"
        assert request.input("missing") == ""
        assert request.input("missing", "d") == "d"

    def test_context_defaults(self):
        context = RequestContext()
        assert context.limit == 20
        assert context.user_id == ""


class TestFieldResolver:
    def test_usage_fields(self, tiny_store):
        resolver = FieldResolver(tiny_store)
        assert resolver.value("t-orders", "views") == 7.0
        assert resolver.value("t-orders", "favorite") == 1.0
        assert resolver.value("t-orders", "unique_viewers") == 2.0
        assert resolver.value("w-q1", "edits") == 1.0

    def test_badge_fields(self, tiny_store):
        resolver = FieldResolver(tiny_store)
        assert resolver.value("t-orders", "endorsed") == 1.0
        assert resolver.value("t-orders", "certified") == 0.0
        assert resolver.value("t-orders", "badge_count") == 1.0

    def test_recency_in_unit_interval(self, tiny_store):
        resolver = FieldResolver(tiny_store)
        recency = resolver.value("t-orders", "recency")
        assert 0.0 < recency <= 1.0
        assert resolver.value("t-web", "recency") == 0.0  # never viewed

    def test_freshness_decreases_with_age(self, tiny_store):
        resolver = FieldResolver(tiny_store)
        old = resolver.value("t-orders", "freshness")  # created day 10
        new = resolver.value("w-q1", "freshness")  # created day 30
        assert new > old

    def test_extra_field_fallback(self, tiny_store):
        artifact = tiny_store.artifact("t-orders")
        artifact.extra["quality_score"] = 0.8
        resolver = FieldResolver(tiny_store)
        assert resolver.value("t-orders", "quality_score") == 0.8

    def test_unknown_field_zero(self, tiny_store):
        assert FieldResolver(tiny_store).value("t-orders", "nope") == 0.0

    def test_register_custom_resolver(self, tiny_store):
        resolver = FieldResolver(tiny_store)
        resolver.register("name_length",
                          lambda aid: float(len(tiny_store.artifact(aid).name)))
        assert resolver.value("t-orders", "name_length") == 6.0

    def test_as_number_coercions(self):
        assert _as_number(True) == 1.0
        assert _as_number(False) == 0.0
        assert _as_number(3) == 3.0
        assert _as_number("2.5") == 2.5
        assert _as_number("abc") == 0.0
        assert _as_number(float("nan")) == 0.0
        assert _as_number(None) == 0.0
        assert _as_number([1, 2]) == 0.0
