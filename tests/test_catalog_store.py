"""Unit tests for CatalogStore: entities, indexes, events."""

import pytest

from repro.catalog.model import Artifact, ArtifactType, Team, UsageEvent, User
from repro.errors import DuplicateEntityError, UnknownEntityError


class TestEntities:
    def test_counts(self, tiny_store):
        assert tiny_store.artifact_count == 6
        assert tiny_store.user_count == 4
        assert tiny_store.team_count == 2
        assert len(tiny_store) == 6

    def test_duplicate_artifact_rejected(self, tiny_store):
        with pytest.raises(DuplicateEntityError):
            tiny_store.add_artifact(
                Artifact(id="t-orders", name="X", artifact_type="table")
            )

    def test_duplicate_user_rejected(self, tiny_store):
        with pytest.raises(DuplicateEntityError):
            tiny_store.add_user(User(id="u-ann", name="Other"))

    def test_unknown_lookups_raise(self, tiny_store):
        with pytest.raises(UnknownEntityError):
            tiny_store.artifact("nope")
        with pytest.raises(UnknownEntityError):
            tiny_store.user("nope")
        with pytest.raises(UnknownEntityError):
            tiny_store.team("nope")

    def test_unknown_entity_error_is_keyerror(self, tiny_store):
        with pytest.raises(KeyError):
            tiny_store.artifact("nope")

    def test_artifacts_iterate_in_id_order(self, tiny_store):
        ids = [a.id for a in tiny_store.artifacts()]
        assert ids == sorted(ids)

    def test_resolve_skips_missing(self, tiny_store):
        resolved = tiny_store.resolve(["t-orders", "ghost", "w-q1"])
        assert [a.id for a in resolved] == ["t-orders", "w-q1"]

    def test_find_user_by_name_case_insensitive(self, tiny_store):
        assert tiny_store.find_user_by_name("ann lee").id == "u-ann"
        assert tiny_store.find_user_by_name("Nobody") is None

    def test_find_user_by_name_ambiguous_returns_none(self, tiny_store):
        """Two users sharing a display name: resolving by name must not
        silently pick one (it used to return whichever was added last)."""
        tiny_store.add_user(User(id="u-ann2", name="Ann Lee", role="intern"))
        assert tiny_store.find_user_by_name("Ann Lee") is None
        assert tiny_store.find_user_by_name("ann lee") is None
        # unambiguous names keep resolving
        assert tiny_store.find_user_by_name("Bob Ray").id == "u-bob"

    def test_find_user_by_name_survives_many_collisions(self, tiny_store):
        for index in range(3):
            tiny_store.add_user(User(id=f"u-dup{index}", name="Same Name"))
        assert tiny_store.find_user_by_name("Same Name") is None

    def test_teams_of_uses_both_sides(self, tiny_store):
        tiny_store.add_user(User(id="u-new", name="New", team_ids=("t-2",)))
        teams = tiny_store.teams_of("u-new")
        assert [t.id for t in teams] == ["t-2"]

    def test_set_team_replaces(self, tiny_store):
        team = tiny_store.team("t-1")
        tiny_store.set_team(Team(id="t-1", name=team.name,
                                 admin_ids=team.admin_ids + ("u-dee",),
                                 member_ids=team.member_ids))
        assert tiny_store.team("t-1").is_admin("u-dee")

    def test_set_team_unknown_raises(self, tiny_store):
        with pytest.raises(UnknownEntityError):
            tiny_store.set_team(Team(id="t-9", name="Ghost"))


class TestIndexes:
    def test_by_type(self, tiny_store):
        assert tiny_store.by_type("table") == [
            "t-customers", "t-orders", "t-web",
        ]
        assert tiny_store.by_type(ArtifactType.WORKBOOK) == ["w-q1"]

    def test_by_owner(self, tiny_store):
        assert tiny_store.by_owner("u-ann") == ["t-orders", "v-orders"]

    def test_by_badge(self, tiny_store):
        assert tiny_store.by_badge("endorsed") == ["d-sales", "t-orders"]

    def test_by_badge_with_grantor(self, tiny_store):
        assert tiny_store.by_badge("endorsed", granted_by="u-bob") == [
            "t-orders"
        ]
        assert tiny_store.by_badge("endorsed", granted_by="u-ann") == [
            "d-sales"
        ]

    def test_by_tag(self, tiny_store):
        assert "t-customers" in tiny_store.by_tag("crm")
        assert tiny_store.by_tag("CRM") == tiny_store.by_tag("crm")

    def test_by_team(self, tiny_store):
        assert set(tiny_store.by_team("t-2")) == {"t-web", "w-q1"}

    def test_by_token(self, tiny_store):
        assert "t-orders" in tiny_store.by_token("orders")
        assert "t-orders" in tiny_store.by_token("ORDERS")

    def test_search_tokens_conjunctive(self, tiny_store):
        assert tiny_store.search_tokens(["sales", "dashboard"]) == ["d-sales"]
        assert tiny_store.search_tokens(["sales", "zebra"]) == []

    def test_badges_and_tags_in_use(self, tiny_store):
        assert tiny_store.badges_in_use() == ["certified", "endorsed"]
        assert "crm" in tiny_store.tags_in_use()

    def test_grant_badge_reindexes(self, tiny_store):
        tiny_store.grant_badge("t-web", "endorsed", "u-bob")
        assert "t-web" in tiny_store.by_badge("endorsed")
        assert tiny_store.artifact("t-web").has_badge("endorsed")

    def test_grant_badge_unknown_grantor(self, tiny_store):
        with pytest.raises(UnknownEntityError):
            tiny_store.grant_badge("t-web", "endorsed", "nobody")


class TestEvents:
    def test_record_validates_entities(self, tiny_store):
        with pytest.raises(UnknownEntityError):
            tiny_store.record_event(UsageEvent("ghost", "u-ann", "view", 1.0))
        with pytest.raises(UnknownEntityError):
            tiny_store.record_event(UsageEvent("t-orders", "ghost", "view", 1.0))

    def test_usage_stats_flow(self, tiny_store):
        stats = tiny_store.usage_stats("t-orders")
        assert stats.view_count == 7
        assert stats.favorite_count == 1
        assert stats.unique_viewers == 2

    def test_record_convenience_uses_clock(self, tiny_store):
        before = tiny_store.clock.now()
        tiny_store.record("t-web", "u-cyd", "view")
        assert tiny_store.usage_stats("t-web").last_viewed_at == before

    def test_filter_artifacts(self, tiny_store):
        tables = tiny_store.filter_artifacts(
            lambda a: a.artifact_type is ArtifactType.TABLE
        )
        assert len(tables) == 3
