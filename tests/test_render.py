"""Tests for text and HTML renderers."""

import pytest

from repro.core.interface.preview import build_preview
from repro.core.ranking import Ranker
from repro.core.render.html import render_interface_html, render_view_html
from repro.core.render.text import (
    render_preview_text,
    render_tabs_text,
    render_view_text,
)
from repro.core.views.factory import ViewFactory
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.fields import FieldResolver
from repro.providers.suite import default_spec


@pytest.fixture
def views(tiny_store, tiny_providers, spec):
    """One built view per representation."""
    factory = ViewFactory(tiny_store, spec, Ranker(FieldResolver(tiny_store)))

    def build(name, inputs=None, user=""):
        request = ProviderRequest(
            inputs=dict(inputs or {}),
            context=RequestContext(user_id=user, limit=20),
        )
        result = tiny_providers.endpoints()[name](request)
        return factory.build(spec.provider(name), result,
                             inputs=dict(inputs or {}))

    return {
        "list": build("of_type", {"artifact_type": "table"}),
        "tiles": build("most_viewed"),
        "hierarchy": build("lineage", {"artifact": "t-orders"}),
        "graph": build("joinable", {"artifact": "t-orders"}),
        "categories": build("types"),
        "embedding": build("embedding_map"),
    }


class TestTextRenderer:
    def test_every_representation_renders(self, views):
        for representation, view in views.items():
            text = render_view_text(view)
            assert view.title in text
            assert representation in text

    def test_list_shows_names_and_badges(self, views):
        text = render_view_text(views["list"])
        assert "ORDERS" in text
        assert "endorsed" in text

    def test_tiles_truncation_note(self, views):
        text = render_view_text(views["tiles"], max_items=1)
        assert "more tiles" in text

    def test_hierarchy_indentation(self, views):
        text = render_view_text(views["hierarchy"])
        assert "ORDERS" in text
        assert "└─" in text

    def test_graph_edge_lines(self, views):
        text = render_view_text(views["graph"])
        assert "-->" in text
        assert "customer_id" in text

    def test_categories_counts(self, views):
        text = render_view_text(views["categories"])
        assert "table" in text
        assert "3" in text

    def test_embedding_ascii_scatter(self, views):
        text = render_view_text(views["embedding"])
        assert "●" in text

    def test_empty_view(self, views):
        empty = views["list"].filtered(set())
        assert "(empty)" in render_view_text(empty)

    def test_deterministic(self, views):
        for view in views.values():
            assert render_view_text(view) == render_view_text(view)

    def test_preview_text(self, tiny_store):
        text = render_preview_text(build_preview(tiny_store, "t-orders"))
        assert "ORDERS" in text
        assert "endorsed" in text
        assert "order_id" in text  # snippet header


class TestTabsRenderer:
    def test_active_tab_marked(self, tiny_app):
        session = tiny_app.session("u-ann")
        tabs = session.open_home()
        text = render_tabs_text(tabs, active=1)
        assert f"*{tabs[1].title}*" in text

    def test_no_tabs(self):
        assert "no views" in render_tabs_text([])


class TestHtmlRenderer:
    def test_every_representation_renders(self, views):
        for view in views.values():
            html = render_view_html(view)
            assert html.startswith("<section>")
            assert view.title in html

    def test_escaping(self, views):
        view = views["list"]
        # inject a hostile title through replace (frozen dataclass)
        import dataclasses

        hostile = dataclasses.replace(view, title="<script>alert(1)</script>")
        html = render_view_html(hostile)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_graph_svg_nodes(self, views):
        html = render_view_html(views["graph"])
        assert "<svg" in html
        assert "<circle" in html
        assert "<line" in html

    def test_embedding_svg_tooltips(self, views):
        html = render_view_html(views["embedding"])
        assert "<title>" in html

    def test_full_document(self, tiny_app):
        session = tiny_app.session("u-ann")
        tabs = session.open_home()
        document = render_interface_html(tabs, title="Discovery")
        assert document.startswith("<!DOCTYPE html>")
        assert "Discovery" in document
        assert 'class="tab active"' in document
