"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.core.query.ast
import repro.core.query.nlq
import repro.util.clock
import repro.util.ids
import repro.util.textutil

MODULES = [
    repro.core.query.ast,
    repro.core.query.nlq,
    repro.util.clock,
    repro.util.ids,
    repro.util.textutil,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s)"
