"""Negative controls for the simulated study.

E1's claim is that task completions are *measured*, not scripted.  These
tests prove it: breaking the interface pieces a task depends on makes
that task fail, while the untouched tasks keep succeeding.
"""

import pytest

from repro.providers.faults import FlakyEndpoint
from repro.study.executor import TaskExecutor, prepare_study_app
from repro.study.personas import PERSONAS


def always_broken(app, endpoint_name: str) -> None:
    original = app.registry.resolve(f"catalog://{endpoint_name}")
    app.registry.register(
        f"catalog://{endpoint_name}",
        FlakyEndpoint(original, fail_on=lambda i: True, name=endpoint_name),
        replace=True,
    )


class TestNegativeControls:
    def test_task1_fails_without_badge_providers(self):
        """Both Task-1 routes (Badges view, badged: query) need the badge
        providers; killing them must fail the task for every persona."""
        app, team_id = prepare_study_app()
        always_broken(app, "badges")
        always_broken(app, "badged")
        for persona in PERSONAS[:2]:  # one search-first, one views-first
            executor = TaskExecutor(app, persona, team_id)
            outcome = executor.task1()
            assert not outcome.completed, persona.pid

    def test_task1_fails_if_target_artifact_missing(self):
        """Remove the endorsed badge from AIRLINES: the views route no
        longer lists it under 'endorsed' and the search route misses."""
        app, team_id = prepare_study_app()
        store = app.store

        # Rebuild AIRLINES without badges (the store has no un-badge op;
        # swap the artifact wholesale).
        airlines = store.artifact("table-airlines")
        import dataclasses

        stripped = dataclasses.replace(airlines, badges=())
        # Test-only surgical edit: backend replace handles deindex+reindex.
        store._token_cache.pop("table-airlines", None)
        store._backend.put_artifact(stripped)
        store._mutated("entities", "text")

        executor = TaskExecutor(app, PERSONAS[0], team_id)
        outcome = executor.task1()
        assert not outcome.completed

    def test_task3_fails_without_ownership_provider(self):
        app, team_id = prepare_study_app()
        always_broken(app, "created_by")
        always_broken(app, "owned_by")
        executor = TaskExecutor(app, PERSONAS[0], team_id)
        executor.task1()
        executor.task2()
        from repro.errors import ProviderError

        # The search itself surfaces the outage (queries that need a
        # provider fail loudly, §test_faults) — the task cannot complete.
        with pytest.raises(ProviderError):
            executor.task3()

    def test_other_tasks_unaffected_by_badge_outage(self):
        """Fault containment: Task 4 (configuration) succeeds even while
        the badge providers are down."""
        app, team_id = prepare_study_app()
        always_broken(app, "badges")
        always_broken(app, "badged")
        executor = TaskExecutor(app, PERSONAS[0], team_id)
        outcome = executor.task4()
        assert outcome.completed

    def test_task2_fails_with_no_peers(self):
        """Strip every other endorsed table and the type/badge exploration
        can still find same-type elements — so only breaking *both*
        providers fails Task 2."""
        app, team_id = prepare_study_app()
        always_broken(app, "of_type")
        always_broken(app, "badged")
        executor = TaskExecutor(app, PERSONAS[0], team_id)
        executor.task1()
        outcome = executor.task2()
        assert not outcome.completed
