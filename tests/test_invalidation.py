"""Per-domain versioning and dependency-aware cache invalidation.

Covers the store's per-domain counters (which mutators bump which
domains, including lineage edges added directly on ``store.lineage``),
the ``@depends_on`` declaration plumbing through registry and spec, the
engine's selective invalidation matrix (domain mutated × endpoint
dependency), the conservative full-flush fallbacks (undeclared
endpoints, stores without domain counters), and the headline guarantee:
no interleaving of mutations and queries ever serves a stale result.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.domains import (
    ALL_DOMAINS,
    DOMAIN_ENTITIES,
    DOMAIN_LINEAGE,
    DOMAIN_MEMBERSHIP,
    DOMAIN_TEXT,
    DOMAIN_USAGE,
    coerce_domains,
)
from repro.catalog.model import Artifact, ArtifactType, Team, User
from repro.providers.base import (
    ProviderRequest,
    RequestContext,
    ScoredArtifact,
    declared_dependencies,
    depends_on,
    list_result,
)
from repro.providers.declarative import RuleEndpoint
from repro.providers.execution import ExecutionEngine
from repro.providers.registry import EndpointRegistry
from repro.workbook.app import WorkbookApp

from tests.conftest import build_tiny_store


class CountingEndpoint:
    def __init__(self, ids=("a-1",)):
        self.calls = 0
        self._ids = tuple(ids)

    def __call__(self, request):
        self.calls += 1
        return list_result([ScoredArtifact(aid) for aid in self._ids])


#: Mutation label -> (mutator, domains the store must report as changed).
MUTATIONS = {
    "record_view": (
        lambda store: store.record("t-orders", "u-ann", "view"),
        {DOMAIN_USAGE},
    ),
    "add_artifact": (
        lambda store: store.add_artifact(
            Artifact(id="t-new", name="NEW", artifact_type=ArtifactType.TABLE)
        ),
        {DOMAIN_ENTITIES, DOMAIN_TEXT},
    ),
    "grant_badge": (
        lambda store: store.grant_badge("t-orders", "endorsed", "u-ann"),
        {DOMAIN_ENTITIES, DOMAIN_TEXT},
    ),
    "add_user": (
        lambda store: store.add_user(User(id="u-new", name="New Person")),
        {DOMAIN_MEMBERSHIP},
    ),
    "add_team": (
        lambda store: store.add_team(Team(id="t-9", name="Gamma")),
        {DOMAIN_MEMBERSHIP},
    ),
    "lineage_edge": (
        lambda store: store.lineage.add_edge("t-orders", "w-q1"),
        {DOMAIN_LINEAGE},
    ),
}


class TestDomainVersions:
    @pytest.mark.parametrize("label", sorted(MUTATIONS))
    def test_mutators_bump_exactly_their_domains(self, label):
        store = build_tiny_store()
        mutate, expected = MUTATIONS[label]
        before = store.domain_versions
        mutate(store)
        after = store.domain_versions
        bumped = {d for d in ALL_DOMAINS if after[d] > before[d]}
        assert bumped == expected

    def test_direct_lineage_edge_bumps_lineage_domain(self):
        """Edges added on ``store.lineage`` directly (synth, persistence)
        must not bypass versioning — regression for the on_mutate hook."""
        store = build_tiny_store()
        before = store.domain_version(DOMAIN_LINEAGE)
        store.lineage.add_edge("t-orders", "w-q1")
        assert store.domain_version(DOMAIN_LINEAGE) == before + 1

    def test_monolithic_version_still_bumps(self):
        store = build_tiny_store()
        before = store.version
        store.record("t-orders", "u-ann", "view")
        assert store.version > before

    def test_domain_versions_returns_copy(self):
        store = build_tiny_store()
        versions = store.domain_versions
        versions[DOMAIN_USAGE] = -99
        assert store.domain_version(DOMAIN_USAGE) != -99

    def test_coerce_domains_rejects_unknown(self):
        with pytest.raises(ValueError):
            coerce_domains(["usage", "weather"])


class TestDependencyDeclaration:
    def test_depends_on_sets_declared_dependencies(self):
        @depends_on(DOMAIN_USAGE, DOMAIN_ENTITIES)
        def endpoint(request):
            return list_result([])

        assert declared_dependencies(endpoint) == frozenset(
            {DOMAIN_USAGE, DOMAIN_ENTITIES}
        )

    def test_undecorated_endpoint_is_undeclared(self):
        assert declared_dependencies(lambda request: list_result([])) is None

    def test_depends_on_rejects_unknown_domain(self):
        with pytest.raises(ValueError):
            depends_on("nonsense")

    def test_registry_autodiscovers_decorated_endpoint(self):
        registry = EndpointRegistry()

        @depends_on(DOMAIN_LINEAGE)
        def endpoint(request):
            return list_result([])

        registry.register("x://lin", endpoint)
        assert registry.dependencies("x://lin") == frozenset({DOMAIN_LINEAGE})

    def test_registry_explicit_dependencies_win(self):
        registry = EndpointRegistry()
        registry.register(
            "x://e", lambda r: list_result([]), dependencies=("membership",)
        )
        assert registry.dependencies("x://e") == frozenset({"membership"})

    def test_registry_undeclared_returns_none(self):
        registry = EndpointRegistry()
        registry.register("x://u", lambda r: list_result([]))
        assert registry.dependencies("x://u") is None

    def test_builtin_suite_is_fully_declared(self, tiny_store):
        with WorkbookApp(tiny_store) as app:
            for provider in app.spec.providers:
                deps = app.engine.dependencies_for(provider.endpoint)
                assert deps, f"{provider.name} has no declared dependencies"
                assert deps <= ALL_DOMAINS

    def test_spec_declared_dependencies_reach_engine(self, tiny_store):
        """ProviderSpec.dependencies overlay endpoints with no decorator."""
        with WorkbookApp(tiny_store) as app:
            assert app.engine.dependencies_for("catalog://owned_by") >= frozenset(
                {DOMAIN_ENTITIES, DOMAIN_MEMBERSHIP}
            )

    def test_declare_dependencies_unions_with_registry(self):
        registry = EndpointRegistry()

        @depends_on(DOMAIN_ENTITIES)
        def endpoint(request):
            return list_result([])

        registry.register("x://e", endpoint)
        engine = ExecutionEngine(registry)
        engine.declare_dependencies("x://e", (DOMAIN_USAGE,))
        assert engine.dependencies_for("x://e") == frozenset(
            {DOMAIN_ENTITIES, DOMAIN_USAGE}
        )


#: Endpoint URI -> declared dependency domains (None = undeclared).
ENDPOINT_DEPS = {
    "x://usage": frozenset({DOMAIN_USAGE}),
    "x://entities": frozenset({DOMAIN_ENTITIES}),
    "x://lineage": frozenset({DOMAIN_LINEAGE}),
    "x://membership": frozenset({DOMAIN_MEMBERSHIP}),
    "x://text": frozenset({DOMAIN_TEXT}),
    "x://mixed": frozenset({DOMAIN_USAGE, DOMAIN_MEMBERSHIP}),
    "x://undeclared": None,
}


def build_matrix_engine(store):
    registry = EndpointRegistry()
    endpoints = {}
    for uri, deps in ENDPOINT_DEPS.items():
        endpoint = CountingEndpoint()
        if deps is not None:
            depends_on(*deps)(endpoint)
        registry.register(uri, endpoint)
        endpoints[uri] = endpoint
    return ExecutionEngine(registry, store=store), endpoints


class TestInvalidationMatrix:
    @pytest.mark.parametrize("label", sorted(MUTATIONS))
    def test_only_dependent_entries_invalidate(self, label):
        store = build_tiny_store()
        mutate, changed = MUTATIONS[label]
        engine, endpoints = build_matrix_engine(store)
        for uri in ENDPOINT_DEPS:
            engine.fetch(uri, ProviderRequest())
        mutate(store)
        for uri in ENDPOINT_DEPS:
            engine.fetch(uri, ProviderRequest())
        for uri, deps in ENDPOINT_DEPS.items():
            should_refetch = deps is None or bool(deps & changed)
            expected_calls = 2 if should_refetch else 1
            assert endpoints[uri].calls == expected_calls, (
                f"{uri} (deps={deps}) after {label}: "
                f"expected {expected_calls} calls, saw {endpoints[uri].calls}"
            )

    def test_usage_write_preserves_annotation_cache(self, tiny_store):
        """The tentpole scenario: usage traffic must not evict results of
        providers that only depend on entity metadata."""
        engine, endpoints = build_matrix_engine(tiny_store)
        engine.fetch("x://entities", ProviderRequest())
        for _ in range(25):
            tiny_store.record("t-orders", "u-ann", "view")
            engine.fetch("x://entities", ProviderRequest())
        assert endpoints["x://entities"].calls == 1
        assert engine.stats.cache_hits == 25

    def test_invalidations_counter_records_drops(self, tiny_store):
        engine, _ = build_matrix_engine(tiny_store)
        for uri in ENDPOINT_DEPS:
            engine.fetch(uri, ProviderRequest())
        tiny_store.record("t-orders", "u-ann", "view")
        engine.fetch("x://usage", ProviderRequest())
        # usage, mixed and the undeclared endpoint were dropped.
        assert engine.stats.invalidations == 3
        assert engine.stats.endpoint("x://usage").invalidations == 1
        assert engine.stats.endpoint("x://entities").invalidations == 0


class TestConservativeFallback:
    def test_undeclared_endpoint_flushes_on_any_write(self, tiny_store):
        engine, endpoints = build_matrix_engine(tiny_store)
        engine.fetch("x://undeclared", ProviderRequest())
        tiny_store.record("t-orders", "u-ann", "view")
        engine.fetch("x://undeclared", ProviderRequest())
        tiny_store.grant_badge("t-orders", "endorsed", "u-ann")
        engine.fetch("x://undeclared", ProviderRequest())
        assert endpoints["x://undeclared"].calls == 3

    def test_store_without_domain_counters_flushes_everything(self):
        """Duck-typed stores predating domain versioning fall back to the
        old invalidate-on-any-write behaviour, even for declared deps."""

        class LegacyStore:
            def __init__(self):
                self.version = 0

        store = LegacyStore()
        registry = EndpointRegistry()
        endpoint = CountingEndpoint()
        depends_on(DOMAIN_ENTITIES)(endpoint)
        registry.register("x://e", endpoint)
        engine = ExecutionEngine(registry, store=store)
        engine.fetch("x://e", ProviderRequest())
        store.version += 1  # a "usage-like" write on a legacy store
        engine.fetch("x://e", ProviderRequest())
        assert endpoint.calls == 2

    def test_registry_swap_still_flushes_everything(self, tiny_store):
        engine, endpoints = build_matrix_engine(tiny_store)
        for uri in ENDPOINT_DEPS:
            engine.fetch(uri, ProviderRequest())
        engine.registry.register("x://late", CountingEndpoint())
        for uri in ENDPOINT_DEPS:
            engine.fetch(uri, ProviderRequest())
        assert all(ep.calls == 2 for ep in endpoints.values())


class TestMembershipSurvivesUsageWrites:
    """Entities-only providers must not bake a usage-ranked top-N into
    cache entries that no usage write will ever drop.  They return full
    membership (views order advisory); the view layer truncates to the
    display limit only after re-ranking on live resolver values.
    """

    def test_builtin_ranker_returns_full_membership(self, tiny_providers):
        request = ProviderRequest(
            inputs={"artifact_type": "table"},
            context=RequestContext(limit=1),
        )
        result = tiny_providers.of_type(request)
        assert sorted(i.artifact_id for i in result.items) == [
            "t-customers", "t-orders", "t-web",
        ]

    def test_rule_endpoint_returns_full_membership(self, tiny_store):
        endpoint = RuleEndpoint(
            tiny_store, [{"field": "type", "op": "eq", "value": "table"}]
        )
        request = ProviderRequest(context=RequestContext(limit=1))
        result = endpoint(request)
        assert sorted(i.artifact_id for i in result.items) == [
            "t-customers", "t-orders", "t-web",
        ]

    def test_rule_endpoint_cache_survives_usage_and_stays_complete(self):
        store = build_tiny_store()
        registry = EndpointRegistry()
        registry.register(
            "x://tables",
            RuleEndpoint(store, [{"field": "type", "op": "eq",
                                  "value": "table"}]),
        )
        engine = ExecutionEngine(registry, store=store)
        request = ProviderRequest(context=RequestContext(limit=1))
        engine.fetch("x://tables", request)
        store.record("t-web", "u-cyd", "view")
        second = engine.fetch("x://tables", request)
        # entities-only declaration: the entry survived the usage write...
        assert engine.stats.cache_hits == 1
        # ...and can, because it holds every match, not a usage top-1.
        assert sorted(i.artifact_id for i in second.items) == [
            "t-customers", "t-orders", "t-web",
        ]

    def test_open_view_top_n_fresh_after_usage_flip(self):
        """The end-to-end regression: a usage swing must move a newly-hot
        artifact into a cached entities-only view's top-N."""
        store = build_tiny_store()
        with WorkbookApp(store) as app:
            before = app.interface.open_view(
                "of_type", {"artifact_type": "table"},
                user_id="u-ann", limit=2,
            )
            assert "t-web" not in before.artifact_ids()  # cold at first
            for _ in range(30):
                store.record("t-web", "u-cyd", "view")
            after = app.interface.open_view(
                "of_type", {"artifact_type": "table"},
                user_id="u-ann", limit=2,
            )
            # The provider's cache entry survived the usage writes, yet
            # the displayed top-2 matches a cold-cache ground truth.
            assert app.stats.cache_hits > 0
            assert len(after.artifact_ids()) == 2
            with WorkbookApp(store) as fresh:
                expected = fresh.interface.open_view(
                    "of_type", {"artifact_type": "table"},
                    user_id="u-ann", limit=2,
                ).artifact_ids()
            assert after.artifact_ids() == expected
            assert "t-web" in after.artifact_ids()


class TestOverlayLifecycle:
    """Spec-declared dependency overlays are bound to the registration
    generation of the callable they described."""

    @staticmethod
    def build_engine(store):
        registry = EndpointRegistry()
        registry.register("x://e", CountingEndpoint())
        engine = ExecutionEngine(registry, store=store)
        engine.declare_dependencies("x://e", (DOMAIN_ENTITIES,))
        return registry, engine

    def test_reregistration_retires_spec_overlay(self, tiny_store):
        registry, engine = self.build_engine(tiny_store)
        assert engine.dependencies_for("x://e") == frozenset({DOMAIN_ENTITIES})
        registry.register("x://e", CountingEndpoint(), replace=True)
        # The swapped-in callable declared nothing; it must fall back to
        # conservative invalidation, not inherit its predecessor's set.
        assert engine.dependencies_for("x://e") is None

    def test_swapped_endpoint_invalidates_conservatively(self, tiny_store):
        registry, engine = self.build_engine(tiny_store)
        swapped = CountingEndpoint(ids=("a-2",))
        registry.register("x://e", swapped, replace=True)
        engine.fetch("x://e", ProviderRequest())
        tiny_store.record("t-orders", "u-ann", "view")
        engine.fetch("x://e", ProviderRequest())
        # A lingering entities-only overlay would have served the cache.
        assert swapped.calls == 2

    def test_redeclaration_after_swap_takes_effect(self, tiny_store):
        registry, engine = self.build_engine(tiny_store)
        registry.register("x://e", CountingEndpoint(), replace=True)
        engine.declare_dependencies("x://e", (DOMAIN_USAGE,))
        assert engine.dependencies_for("x://e") == frozenset({DOMAIN_USAGE})

    def test_full_invalidate_clears_overlay(self, tiny_store):
        _, engine = self.build_engine(tiny_store)
        engine.invalidate()
        # The spec-swap path: the next interface re-declares its own deps.
        assert engine.dependencies_for("x://e") is None

    def test_single_endpoint_invalidate_keeps_overlay(self, tiny_store):
        _, engine = self.build_engine(tiny_store)
        engine.invalidate("x://e")
        assert engine.dependencies_for("x://e") == frozenset({DOMAIN_ENTITIES})


#: Queries whose membership is independent of usage traffic; their cached
#: provider results must survive `store.record` writes *and* stay correct.
QUERIES = (
    "badged: endorsed",
    "type: table",
    "owned_by: Ann Lee",
    "tagged: sales",
)


def fresh_results(store, query):
    """Ground truth: evaluate on a brand-new app with a cold cache."""
    with WorkbookApp(store) as app:
        result, _ = app.interface.search(query, user_id="u-ann")
        return result.artifact_ids()


class TestNoStaleResults:
    def test_interleaved_mutations_never_serve_stale_results(self):
        store = build_tiny_store()
        store.grant_badge("t-orders", "endorsed", "u-bob")
        rng = random.Random(7)
        mutators = sorted(set(MUTATIONS) - {"add_artifact", "add_user", "add_team"})
        with WorkbookApp(store) as app:
            for step in range(40):
                label = mutators[step % len(mutators)]
                try:
                    MUTATIONS[label][0](store)
                except Exception:
                    pass  # duplicate badge/edge grants are fine to skip
                query = QUERIES[rng.randrange(len(QUERIES))]
                result, _ = app.interface.search(query, user_id="u-ann")
                assert result.artifact_ids() == fresh_results(store, query), (
                    f"stale result for {query!r} after {label} at step {step}"
                )
            # The cache did real work across those searches.
            assert app.stats.cache_hits > 0


@settings(max_examples=25, deadline=None)
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(sorted(MUTATIONS)),
            st.sampled_from(QUERIES),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_random_interleaving_never_stale(steps):
    store = build_tiny_store()
    store.grant_badge("t-orders", "endorsed", "u-bob")
    with WorkbookApp(store) as app:
        for label, query in steps:
            try:
                MUTATIONS[label][0](store)
            except Exception:
                pass  # duplicate entity/edge from repeated labels
            result, _ = app.interface.search(query, user_id="u-ann")
            assert result.artifact_ids() == fresh_results(store, query)
