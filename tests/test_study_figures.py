"""Tests for the Figure 8 SVG renderer."""

import pytest

from repro.study.executor import run_study
from repro.study.figures import figure8_svg, save_figure8
from repro.study.questionnaire import STATEMENTS


@pytest.fixture(scope="module")
def run():
    return run_study()


class TestFigure8Svg:
    def test_is_valid_svg_document(self, run):
        svg = figure8_svg(run)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")

    def test_one_row_per_statement(self, run):
        svg = figure8_svg(run)
        for statement in STATEMENTS:
            assert statement.sid in svg

    def test_dual_encoding_present(self, run):
        svg = figure8_svg(run)
        assert "<rect" in svg  # diverging bars
        assert "<circle" in svg  # mean dots
        assert "±" in svg  # std whisker labels

    def test_paper_reference_in_footer(self, run):
        assert "3.97" in figure8_svg(run)

    def test_parses_as_xml(self, run):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(figure8_svg(run))
        assert root.tag.endswith("svg")
        circles = root.findall(".//{http://www.w3.org/2000/svg}circle")
        assert len(circles) == len(STATEMENTS)

    def test_save(self, run, tmp_path):
        path = tmp_path / "figs" / "figure8.svg"
        save_figure8(run, path)
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<svg")

    def test_deterministic(self, run):
        assert figure8_svg(run) == figure8_svg(run)
