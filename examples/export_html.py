"""Export the generated interface as HTML (the Figure 6/7 look).

Run:  python examples/export_html.py [output_dir]

Writes one standalone HTML page per generated view type (the six
representations of Figure 6) plus a tabbed interface page (Figure 7),
under ``examples/out/`` by default.
"""

import sys
from pathlib import Path

from repro import WorkbookApp, study_catalog
from repro.core.render import render_interface_html, render_view_html


def main(output_dir: str = "") -> None:
    out = Path(output_dir or Path(__file__).parent / "out")
    out.mkdir(parents=True, exist_ok=True)

    store = study_catalog()
    app = WorkbookApp(store)
    session = app.session("user-alex")
    tabs = session.open_home()

    # Figure 7: the tabbed interface with the first view active.
    interface_html = render_interface_html(
        tabs, active=0, title="Humboldt Data Discovery"
    )
    (out / "interface.html").write_text(interface_html, encoding="utf-8")

    # Figure 6: one page per representation.  Overview tabs cover tiles,
    # list, categories and embedding; exploration supplies graph/hierarchy.
    views = {tab.view.representation: tab.view for tab in tabs}
    session.select_artifact("table-airlines")
    for surfaced in session.explore_selection():
        views.setdefault(surfaced.view.representation, surfaced.view)

    written = []
    for representation, view in sorted(views.items()):
        page = (
            "<!DOCTYPE html><html><head><meta charset='utf-8'>"
            f"<title>{representation}</title></head><body>"
            f"{render_view_html(view)}</body></html>"
        )
        path = out / f"view_{representation}.html"
        path.write_text(page, encoding="utf-8")
        written.append(path.name)

    print(f"wrote {out / 'interface.html'}")
    for name in written:
        print(f"wrote {out / name}")
    print(f"\n{len(views)} of 6 view types rendered: "
          f"{', '.join(sorted(views))}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "")
