"""Customization: team home pages and per-user tailoring (Figure 4).

Run:  python examples/team_homepage.py

Walks the Section 4.4 customization stack: a team admin configures the
"A Team" home page (the paper's Task 4), an individual user hides and
reorders providers, and the org layer disables a provider globally.
"""

from repro import WorkbookApp, study_catalog
from repro.core.render import render_tabs_text


def main() -> None:
    store = study_catalog()
    app = WorkbookApp(store)
    a_team = next(t for t in store.teams() if t.name == "A Team")
    admin_id = a_team.admin_ids[0]

    # -- before: the default overview home ------------------------------
    session = app.session(admin_id, team_id=a_team.id)
    print("default home tabs:",
          [t.title for t in session.open_home()])

    # -- a team admin configures the home page (Listing 2 / Task 4) ------
    session.switch_role("team_admin")
    panel = session.open_team_config()
    print("\nconfiguration panel (Figure 4):")
    for row in panel.rows()[:8]:
        mark = "x" if row.enabled else " "
        print(f"  [{mark}] {row.title:<26} {row.category:<12} "
              f"{'/'.join(row.surfaces)}")
    session.configure_team_home_page(
        ["team_popular", "recents", "badges"], title="A Team HQ"
    )

    page = app.home_pages.home_page(a_team.id, user_id=admin_id)
    print(f"\nconfigured page '{page.title}':",
          page.provider_names())
    print("\nspec custom content now carries the page (Listing 2):")
    print(" ", app.spec.custom["team_home_pages"][-1])

    # -- an individual hides and reorders (§4.4) ------------------------------
    member = app.session(admin_id, team_id=a_team.id)
    member.open_browse()
    print("\nbrowse tabs before user customization:",
          [t.title for t in member.tabs()])
    member.hide_provider("newest")
    member.reorder_providers(["most_viewed", "recents"])
    member.open_browse()
    print("after hiding 'newest' and putting Most Viewed first:",
          [t.title for t in member.tabs()])

    # -- org-level disable ----------------------------------------------------
    app.customization.org.hide("embedding_map")
    member.open_browse()
    print("after org disables the Catalog Map:",
          [t.title for t in member.tabs()])

    print()
    print(render_tabs_text(member.tabs(), active=0, max_items=4))


if __name__ == "__main__":
    main()
