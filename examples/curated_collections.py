"""Declarative providers: curated collections and rule-based views.

Run:  python examples/curated_collections.py

Section 4.1 notes that provider endpoints can be "materialized views of a
database, lookup tables, SQL statements, or ML models".  This example
builds two providers without writing any fetch logic:

* a curated "Golden Datasets" collection (a lookup table), and
* a rule-defined "Certified & Popular" view (the materialized-view
  analogue: ``badged certified AND views >= 3``),

then wires both into the interface with one spec entry each.
"""

from repro import WorkbookApp, generate_catalog, SynthConfig
from repro.core.render import render_view_text
from repro.core.spec.model import ProviderSpec
from repro.providers.declarative import LookupEndpoint, RuleEndpoint


def main() -> None:
    store = generate_catalog(SynthConfig(seed=21, n_tables=100))
    app = WorkbookApp(store)

    # 1. A curated collection — just a list of ids an admin maintains.
    golden = LookupEndpoint(store, store.by_badge("certified")[:4])
    app.registry.register("lookup://golden", golden)

    # 2. A rule-defined provider — predicates over metadata fields.
    hot_certified = RuleEndpoint(store, [
        {"field": "certified", "op": "gte", "value": 1},
        {"field": "views", "op": "gte", "value": 3},
    ], representation="tiles")
    app.registry.register("rules://hot-certified", hot_certified)

    # 3. Two spec entries enable both across the whole UI.
    spec = app.spec
    spec = spec.with_provider(ProviderSpec(
        name="golden",
        endpoint="lookup://golden",
        representation="list",
        category="annotation",
        title="Golden Datasets",
        description="Hand-curated, org-blessed datasets.",
    ))
    spec = spec.with_provider(ProviderSpec(
        name="hot_certified",
        endpoint="rules://hot-certified",
        representation="tiles",
        category="annotation",
        title="Certified & Popular",
        description="Certified artifacts with real usage "
                    "(views >= 3), defined by rules, not code.",
    ))
    app.update_spec(spec)

    user = store.users()[0]
    session = app.session(user.id)
    tabs = session.open_home()
    print("tabs:", [t.title for t in tabs])
    print()
    print(render_view_text(session.select_tab("Golden Datasets").view,
                           max_items=4))
    print()
    print(render_view_text(session.select_tab("Certified & Popular").view,
                           max_items=4))
    print()

    # Curation is live: add an artifact, the view follows on next fetch.
    newcomer = store.by_type("table")[0]
    golden.add(newcomer)
    refreshed = app.interface.open_view("golden", user_id=user.id)
    print(f"after curating {store.artifact(newcomer).name} into the "
          f"collection: {len(refreshed.artifact_ids())} artifacts")

    # Saved searches round out the workflow.
    session.search(":hot_certified() & sales")
    session.save_search("hot sales")
    rerun = session.run_saved("hot sales")
    print(f"saved search 'hot sales' -> {rerun.total} results")


if __name__ == "__main__":
    main()
