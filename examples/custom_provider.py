"""Extensibility: add a new metadata provider with a few lines of spec.

Run:  python examples/custom_provider.py

The paper's pitch (Section 1): "Adding the model as a new metadata
provider in Humboldt's specification would suffice to enable such support
with the relevant views and visualizations generated automatically."

This example does exactly that with a mock "ML model" provider that scores
tables by how *trendy* they are (views accelerating over the last week).
Note what changes: one endpoint registration plus one spec entry.  No
interface code is touched — the new view and the new query field appear on
regeneration.
"""

from repro import (
    ProviderRequest,
    ProviderResult,
    Representation,
    WorkbookApp,
    study_catalog,
)
from repro.core.render import render_view_text
from repro.core.spec import diff_specs
from repro.core.spec.model import ProviderSpec, Visibility
from repro.providers.base import ScoredArtifact
from repro.util.clock import DAY


def main() -> None:
    store = study_catalog()
    app = WorkbookApp(store)

    # 1. The provider implementation (stands in for an ML model endpoint).
    def trending(request: ProviderRequest) -> ProviderResult:
        now = store.clock.now()
        week_ago = now - 7 * DAY
        recent: dict[str, int] = {}
        for event in store.usage.events():
            if event.action == "view" and event.timestamp >= week_ago:
                recent[event.artifact_id] = recent.get(event.artifact_id, 0) + 1
        ranked = sorted(recent.items(), key=lambda kv: (-kv[1], kv[0]))
        items = [
            ScoredArtifact(artifact_id=aid, score=float(count))
            for aid, count in ranked[: request.context.limit]
        ]
        return ProviderResult(
            representation=Representation.TILES, items=tuple(items)
        )

    # 2. Register the endpoint (one line) ...
    app.registry.register("model://trending", trending)

    # 3. ... and add the provider to the specification (the "few lines").
    new_spec = app.spec.with_provider(
        ProviderSpec(
            name="trending",
            endpoint="model://trending",
            representation="tiles",
            category="interaction",
            title="Trending This Week",
            description="Tables with accelerating views (mock ML model).",
            visibility=Visibility(overview=True, exploration=False,
                                  search=True),
        )
    )
    print("spec diff:", diff_specs(app.spec, new_spec).summary())
    app.update_spec(new_spec)

    # The UI regenerated: the new overview tab exists ...
    session = app.session("user-alex")
    tabs = session.open_home()
    print("tabs now:", [t.title for t in tabs])
    trending_tab = session.select_tab("trending")
    print()
    print(render_view_text(trending_tab.view, max_items=6))
    print()

    # ... and the query language gained a field, with autocomplete.
    result = session.search(":trending() & sales")
    print(f"query ':trending() & sales' -> {result.total} artifacts")
    print("suggest('tre') ->",
          [s.text for s in session.suggest("tre", limit=3)])

    # Removing it is equally cheap — and the UI follows.
    app.update_spec(app.spec.without_provider("trending"))
    session = app.session("user-alex")
    print("tabs after removal:", [t.title for t in session.open_home()])


if __name__ == "__main__":
    main()
