"""A tour of the spec-generated query language (Section 5.3, Figure 5).

Run:  python examples/search_tour.py

Shows the two equivalent search interfaces (prefix text and pills), the
logical connectives with brackets and negation, provider calls, value
autocomplete, and filtering a view with a query.
"""

from repro import WorkbookApp, generate_catalog, SynthConfig
from repro.core.query import PillQuery, parse_query
from repro.core.render import render_view_text


def main() -> None:
    store = generate_catalog(SynthConfig(seed=3, n_tables=150))
    app = WorkbookApp(store)
    some_user = store.users()[0]
    session = app.session(some_user.id)

    print("admissible query fields (generated from the spec):")
    print(" ", ", ".join(app.interface.language.field_names()))
    print()

    queries = [
        "type: table & tagged: sales",
        "badged: endorsed | badged: certified",
        "type: table !tagged: hr",
        "(type: dashboard | type: workbook) & marketing",
        f"owned by: \"{some_user.name}\"",
        ":most_viewed() & revenue",
    ]
    for query in queries:
        result = session.search(query)
        names = [store.artifact(a).name
                 for a in result.artifact_ids()][:3]
        print(f"query> {query}")
        print(f"   {result.total:>4} artifacts   e.g. {names}")
    print()

    # -- the pill interface produces the same AST -----------------------------
    pills = (
        PillQuery()
        .field("type", "table")
        .field("tagged", "sales")
        .text("revenue", connector="or")
    )
    print("pills:", pills.labels())
    print("as text:", pills.to_text())
    print("same AST as parsing that text:",
          pills.to_node() == parse_query(pills.to_text()))
    print()

    # -- value autocomplete, typed by the input spec --------------------------
    for partial in ("type: ", "badged: ", "tagged: "):
        print(f"suggest({partial!r}) ->",
              [s.text for s in session.suggest(partial, limit=5)])
    print()

    # -- filtering a view (search scoped to the displayed data) ---------------
    session.open_browse()
    tab = session.select_tab("most viewed")
    before = tab.view.count()
    filtered = session.filter_active_view("tagged: sales")
    print(f"Most Viewed: {before} tiles -> {filtered.count()} "
          f"after 'tagged: sales'")
    print()
    print(render_view_text(filtered, max_items=4))


if __name__ == "__main__":
    main()
