"""Quickstart: generate a discovery UI from the default spec and use it.

Run:  python examples/quickstart.py

Builds the study catalog (a synthetic enterprise catalog seeded with the
paper's example entities), embeds Humboldt in the headless workbook app,
and walks the three discovery modes: overviews, search, and exploration
from a selected artifact.
"""

from repro import WorkbookApp, study_catalog
from repro.core.render import (
    render_preview_text,
    render_tabs_text,
    render_view_text,
)


def main() -> None:
    store = study_catalog()
    app = WorkbookApp(store)
    print(
        f"catalog: {store.artifact_count} artifacts, "
        f"{store.user_count} users, {len(store.usage)} usage events\n"
    )

    # -- overviews: tabs generated from the spec (Figure 7B/C) ----------
    session = app.session("user-alex")
    tabs = session.open_home()
    print(render_tabs_text(tabs, active=0, max_items=5))
    print()

    # -- search: the paper's flagship query (Section 1) ------------------
    query = "type: table owned_by: \"Alex\" badged: endorsed " \
            "badged_by: \"Mike\" & \"sales\""
    print(f"query> {query}")
    result = session.search(query)
    for entry in result.entries:
        print(f"  {store.artifact(entry.artifact_id).name}  "
              f"(score {entry.score:.2f})")
    print()

    # -- autocomplete (Figure 5) ---------------------------------------------
    for partial in ("ow", "badged: ", "owned_by: "):
        suggestions = session.suggest(partial, limit=4)
        print(f"suggest({partial!r}) -> {[s.text for s in suggestions]}")
    print()

    # -- selection, preview, exploration (Sections 5.2/6.3, Figure 7D) -------
    preview = session.select_artifact("table-airlines")
    print(render_preview_text(preview))
    print()
    for surfaced in session.explore_selection(limit=5):
        print(f"--- surfaced by {surfaced.reason} ---")
        print(render_view_text(surfaced.view, max_items=3))
        print()


if __name__ == "__main__":
    main()
