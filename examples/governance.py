"""Data-governance views via the extended provider suite.

Run:  python examples/governance.py

Demonstrates the configurability design goal end-to-end: the extended
providers (stale data, orphaned artifacts, unionable tables, column
search) are installed with one endpoint registration each and enabled by
deriving a larger spec from the default one — no interface code changes.
"""

from repro import WorkbookApp, generate_catalog, SynthConfig
from repro.core.render import render_view_text
from repro.providers.extended import (
    ExtendedProviders,
    extended_spec,
    install_extended_endpoints,
)


def main() -> None:
    store = generate_catalog(SynthConfig(seed=13, n_tables=120))
    app = WorkbookApp(store)

    # Install the governance providers and switch to the extended spec.
    install_extended_endpoints(app.registry, ExtendedProviders(store))
    app.update_spec(extended_spec())
    print("categories:", app.spec.categories())
    print("new query fields:",
          sorted(set(app.spec.search_fields())
                 - {"badged", "badged_by", "created_by", "favorites",
                    "joinable", "lineage", "most_viewed", "newest",
                    "owned_by", "recent_documents", "recents", "similar",
                    "tagged", "team_docs", "team_popular", "type"}))
    print()

    user = store.users()[0]
    session = app.session(user.id)
    session.open_home()

    # Governance overviews appear as ordinary generated tabs.
    stale_tab = session.select_tab("Stale Data")
    print(render_view_text(stale_tab.view, max_items=5))
    print()
    orphans_tab = session.select_tab("Orphaned Artifacts")
    print(f"orphaned artifacts: {orphans_tab.view.count()}")
    print()

    # Column-level discovery through the query language.
    result = session.search("has_column: customer_id & type: table")
    print(f"tables with a customer_id column: {result.total}")
    for entry in result.entries[:5]:
        print(f"  {store.artifact(entry.artifact_id).name}")
    print()

    # Unionable tables surface during exploration.
    some_table = store.by_type("table")[0]
    session.select_artifact(some_table)
    for surfaced in session.explore_selection():
        if surfaced.provider_name == "unionable":
            print(f"unionable with {store.artifact(some_table).name}:")
            print(render_view_text(surfaced.view, max_items=4))
            break


if __name__ == "__main__":
    main()
