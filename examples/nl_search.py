"""Natural-language search (Section 8's future-work direction).

Run:  python examples/nl_search.py

Translates English requests into the spec-generated query language
(grounded in the catalog's vocabulary), shows the equivalent query text,
explains queries back as English "free text formulas" (what participant
P4 asked for), and runs them.
"""

from repro import WorkbookApp, study_catalog
from repro.core.query.nlq import NaturalLanguageTranslator, explain
from repro.core.query.parser import parse_query


def main() -> None:
    store = study_catalog()
    app = WorkbookApp(store)
    translator = NaturalLanguageTranslator(app.interface.language, store)

    requests = [
        # the paper's motivating sentence, §1
        "find the tables created by Alex and endorsed by Mike that "
        "contain sales numbers",
        "recent workbooks created by \"John Doe\"",
        "deprecated tables",
        "tables similar to AIRLINES",
        "dashboards about marketing",
    ]
    for request in requests:
        translation = translator.translate(request)
        result, _ = app.interface.search(
            translation.query_text(), user_id="user-alex"
        )
        print(f"english> {request}")
        print(f"  query: {translation.query_text()}")
        if translation.residual:
            print(f"  free text kept: {', '.join(translation.residual)}")
        names = [store.artifact(a).name for a in result.artifact_ids()][:4]
        print(f"  {result.total} result(s): {names}")
        print()

    # The reverse direction: query -> English (P4's "free text formula").
    query = ("type: table owned_by: 'Alex' badged: endorsed "
             "badged_by: 'Mike' & 'sales'")
    print(f"query> {query}")
    print(f"  reads as: {explain(parse_query(query))}")


if __name__ == "__main__":
    main()
