"""E8 — Scaling with catalog size (§3.1: catalogs of 'up to millions').

Sweeps catalog size and times the interactive operations — interface
generation, global search, view filtering, exploration — recording the
per-size latencies.  The shape that must hold: index-backed query
evaluation grows sublinearly with catalog size (per-result work, not
per-catalog scans).
"""

import time

import pytest

from benchmarks.conftest import write_result
from repro.synth import SynthConfig, generate_catalog
from repro.workbook.app import WorkbookApp

SIZES = (100, 400, 1600, 3200)

_apps: dict[int, WorkbookApp] = {}
_timings: dict[tuple[int, str], float] = {}


def app_for(n_tables: int) -> WorkbookApp:
    if n_tables not in _apps:
        store = generate_catalog(
            SynthConfig(seed=7, n_tables=n_tables,
                        usage_events=n_tables * 8)
        )
        _apps[n_tables] = WorkbookApp(store)
    return _apps[n_tables]


@pytest.mark.parametrize("n_tables", SIZES)
def test_e8_search_scaling(benchmark, n_tables):
    app = app_for(n_tables)
    user = app.store.users()[0]

    def run_search():
        result, _ = app.interface.search(
            "type: table & tagged: sales", user_id=user.id
        )
        return result

    result = benchmark(run_search)
    assert result.total > 0
    _timings[(n_tables, "search")] = benchmark.stats.stats.mean


@pytest.mark.parametrize("n_tables", SIZES)
def test_e8_selective_search_scaling(benchmark, n_tables):
    """A selective query (one artifact's name) — result size is fixed, so
    index-backed evaluation should be near size-independent."""
    app = app_for(n_tables)
    target = app.store.artifact(app.store.by_type("table")[0])
    query = " ".join(target.name.lower().split("_")[:2])

    def run_search():
        result, _ = app.interface.search(query, limit=10)
        return result

    result = benchmark(run_search)
    assert result.total >= 1
    _timings[(n_tables, "selective")] = benchmark.stats.stats.mean


@pytest.mark.parametrize("n_tables", SIZES)
def test_e8_overview_scaling(benchmark, n_tables):
    app = app_for(n_tables)
    user = app.store.users()[0]
    # warm the shared lazy indexes so the benchmark isolates generation
    app.interface.overview_tabs(user_id=user.id)

    tabs = benchmark(app.interface.overview_tabs, user_id=user.id)
    assert tabs
    _timings[(n_tables, "overview")] = benchmark.stats.stats.mean


@pytest.mark.parametrize("n_tables", SIZES)
def test_e8_exploration_scaling(benchmark, n_tables):
    app = app_for(n_tables)
    table_id = app.store.by_type("table")[0]
    user = app.store.users()[0]
    app.exploration.explore(table_id, user_id=user.id)  # warm indexes

    surfaced = benchmark(
        app.exploration.explore, table_id, user_id=user.id
    )
    assert surfaced
    _timings[(n_tables, "exploration")] = benchmark.stats.stats.mean


def test_e8_write_scaling_table(benchmark):
    def build_table():
        lines = [
            f"{'n_tables':>9}{'artifacts':>10}{'search ms':>11}"
            f"{'selective ms':>14}{'overview ms':>13}{'explore ms':>12}"
        ]
        for n_tables in SIZES:
            app = _apps.get(n_tables)
            if app is None:
                continue
            search_ms = _timings.get((n_tables, "search"), 0) * 1000
            selective_ms = _timings.get((n_tables, "selective"), 0) * 1000
            overview_ms = _timings.get((n_tables, "overview"), 0) * 1000
            explore_ms = _timings.get((n_tables, "exploration"), 0) * 1000
            lines.append(
                f"{n_tables:>9}{app.store.artifact_count:>10}"
                f"{search_ms:>11.2f}{selective_ms:>14.2f}"
                f"{overview_ms:>13.2f}{explore_ms:>12.2f}"
            )
        return "\n".join(lines)

    table = benchmark(build_table)
    write_result("E8_scaling", "Latency vs catalog size", table)

    size_ratio = SIZES[-1] / SIZES[0]
    # Broad query: result size grows with the catalog, so latency may grow
    # linearly — but never super-linearly (no per-query catalog scans).
    small = _timings.get((SIZES[0], "search"))
    large = _timings.get((SIZES[-1], "search"))
    if small and large:
        assert large / small < 2.0 * size_ratio
    # Selective query: smaller result sets mean slower latency growth than
    # both the catalog itself and the broad query (work is per-result,
    # not per-catalog).
    small_sel = _timings.get((SIZES[0], "selective"))
    large_sel = _timings.get((SIZES[-1], "selective"))
    if small_sel and large_sel:
        selective_growth = large_sel / small_sel
        assert selective_growth < size_ratio
        if small and large:
            assert selective_growth <= (large / small) * 1.25


def test_e8_index_build_time(benchmark):
    """One-off cost: building a 400-table catalog plus all lazy indexes."""

    def build_everything():
        store = generate_catalog(SynthConfig(seed=11, n_tables=400,
                                             usage_events=2000))
        app = WorkbookApp(store)
        app.providers.joinability.build()
        app.providers.similarity.build()
        app.providers.embedding.build()
        return app

    app = benchmark.pedantic(build_everything, rounds=3, iterations=1)
    assert app.store.artifact_count > 400
