"""E9 — Section 4.2 / Listing 1: ranking.

Times the ranking engine at catalog scale and demonstrates the paper's
two ranking claims: (1) weight edits reorder results with zero code
changes; (2) per-provider weights override the global fallback.  Includes
the DESIGN.md ablation: global-fallback-only vs. per-provider weights.
"""

from benchmarks.conftest import write_result
from repro.core.ranking import Ranker, combine_rankings
from repro.core.spec.model import RankingWeight
from repro.providers.fields import FieldResolver

LISTING1 = (RankingWeight("favorite", 4.3), RankingWeight("views", 1.5))


def test_e9_rank_catalog_with_listing1(benchmark, mid_store):
    ranker = Ranker(FieldResolver(mid_store))
    ids = mid_store.artifact_ids()

    ranked = benchmark(ranker.rank_ids, ids, LISTING1)

    assert len(ranked) == len(ids)
    scores = [entry.score for entry in ranked]
    assert scores == sorted(scores, reverse=True)


def test_e9_weight_edit_reorders_without_code(benchmark, mid_store):
    ranker = Ranker(FieldResolver(mid_store))
    ids = mid_store.artifact_ids()[:200]

    by_usage = ranker.rank_ids(ids, LISTING1)

    def rank_by_freshness():
        return ranker.rank_ids(ids, [RankingWeight("freshness", 100.0)])

    by_freshness = benchmark(rank_by_freshness)
    top_usage = [e.artifact_id for e in by_usage[:10]]
    top_fresh = [e.artifact_id for e in by_freshness[:10]]
    assert top_usage != top_fresh

    overlap = len(set(top_usage) & set(top_fresh))
    write_result(
        "E9_ranking",
        "Listing 1: ranking weight edits reorder results",
        f"top-10 under Listing 1 (favorite 4.3, views 1.5):\n"
        f"  {top_usage}\n"
        f"top-10 under freshness-only weights:\n  {top_fresh}\n"
        f"top-10 overlap: {overlap}/10 (weight edit, zero code changed)",
    )


def test_e9_cross_provider_combination(benchmark, mid_store):
    """§4.2: 'an overall ranking score that can be combined between
    metadata providers'."""
    ranker = Ranker(FieldResolver(mid_store))
    tables = mid_store.by_type("table")[:100]
    workbooks = mid_store.by_type("workbook")
    ranking_a = ranker.rank_ids(tables, LISTING1)
    ranking_b = ranker.rank_ids(workbooks, LISTING1)

    combined = benchmark(combine_rankings, [ranking_a, ranking_b])

    assert len(combined) == len(set(tables) | set(workbooks))
    scores = [entry.score for entry in combined]
    assert scores == sorted(scores, reverse=True)


def test_e9_ablation_global_vs_provider_weights(benchmark, mid_app):
    """Ablation: the recents view with its per-provider recency weight vs.
    the same view forced onto the global fallback."""
    from repro.providers.suite import default_spec

    store = mid_app.store
    user = store.users()[0]
    with_override = default_spec()
    without_override = with_override.with_provider(
        with_override.provider("recents").with_ranking()  # drop to fallback
    )

    def generate_both():
        a = mid_app.interface.with_spec(with_override).open_view(
            "recents", user_id=user.id
        )
        b = mid_app.interface.with_spec(without_override).open_view(
            "recents", user_id=user.id
        )
        return (a, b)

    view_a, view_b = benchmark(generate_both)
    assert set(view_a.artifact_ids()) == set(view_b.artifact_ids())
    ordering_differs = view_a.artifact_ids() != view_b.artifact_ids()
    write_result(
        "E9b_ranking_ablation",
        "Per-provider weights vs global fallback (recents view)",
        f"recency-weighted order: {view_a.artifact_ids()[:5]}\n"
        f"global-fallback order:  {view_b.artifact_ids()[:5]}\n"
        f"ordering differs: {ordering_differs}",
    )
