"""Shared benchmark fixtures and the experiment-report writer.

Each experiment benchmark (E1–E10, see DESIGN.md) times its core operation
with pytest-benchmark *and* writes a paper-vs-measured table to
``benchmarks/results/EXX_*.txt`` so the reproduced numbers survive the
run.  EXPERIMENTS.md indexes those files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.synth import SynthConfig, generate_catalog, study_catalog
from repro.workbook.app import WorkbookApp

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(experiment_id: str, title: str, body: str) -> Path:
    """Persist one experiment's output table."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{experiment_id}.txt"
    path.write_text(f"{experiment_id} — {title}\n\n{body}\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def study_store():
    return study_catalog()


@pytest.fixture(scope="session")
def bench_app(study_store):
    return WorkbookApp(study_store)


@pytest.fixture(scope="session")
def mid_store():
    """A mid-size catalog for provider/query benchmarks."""
    return generate_catalog(SynthConfig(seed=7, n_tables=400,
                                        usage_events=8000))


@pytest.fixture(scope="session")
def mid_app(mid_store):
    return WorkbookApp(mid_store)
