"""E4b — Extended and declarative providers at catalog scale.

The paper expects the provider population to grow (§3.2).  This bench
measures the grown population: the governance suite and declarative
endpoints fetching against the mid-size catalog, plus the cost of the
spec swap that enables them.
"""

import pytest

from benchmarks.conftest import write_result
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.declarative import LookupEndpoint, RuleEndpoint
from repro.providers.extended import (
    ExtendedProviders,
    extended_spec,
    install_extended_endpoints,
)

_RESULTS: dict[str, int] = {}


@pytest.fixture(scope="module")
def extended(mid_store):
    return ExtendedProviders(mid_store)


EXTENDED_CASES = {
    "unionable": lambda store: {"artifact": store.by_type("table")[0]},
    "stale": lambda store: {},
    "has_column": lambda store: {"text": "customer_id"},
    "orphans": lambda store: {},
}


@pytest.mark.parametrize("name", sorted(EXTENDED_CASES))
def test_e4b_extended_fetch(benchmark, mid_store, extended, name):
    inputs = EXTENDED_CASES[name](mid_store)
    endpoint = extended.endpoints()[name]
    request = ProviderRequest(inputs=inputs,
                              context=RequestContext(limit=20))

    result = benchmark(endpoint, request)
    _RESULTS[name] = len(result.artifact_ids())


def test_e4b_declarative_rule_fetch(benchmark, mid_store):
    endpoint = RuleEndpoint(mid_store, [
        {"field": "type", "op": "eq", "value": "table"},
        {"field": "views", "op": "gte", "value": 5},
    ])
    request = ProviderRequest(context=RequestContext(limit=50))
    result = benchmark(endpoint, request)
    assert result.artifact_ids()
    _RESULTS["rule(hot tables)"] = len(result.artifact_ids())


def test_e4b_declarative_lookup_fetch(benchmark, mid_store):
    endpoint = LookupEndpoint(mid_store, mid_store.by_type("table")[:25])
    request = ProviderRequest(context=RequestContext(limit=50))
    result = benchmark(endpoint, request)
    assert len(result.artifact_ids()) == 25
    _RESULTS["lookup(golden)"] = 25


def test_e4b_spec_swap_enables_everything(benchmark, mid_app):
    install_extended_endpoints(mid_app.registry,
                               ExtendedProviders(mid_app.store))
    spec = extended_spec()

    def swap():
        return mid_app.interface.with_spec(spec)

    interface = benchmark(swap)
    assert "has_column" in interface.language.field_names()

    lines = [f"{'provider':<22}{'artifacts served':>17}"]
    for name in sorted(_RESULTS):
        lines.append(f"{name:<22}{_RESULTS[name]:>17}")
    write_result("E4b_extended",
                 "Extended + declarative providers (grown population)",
                 "\n".join(lines))
