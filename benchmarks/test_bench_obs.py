"""BENCH_obs — observability overhead: tracing off, tracing on, exporters.

The :mod:`repro.obs` subsystem's contract is that it is effectively free
when off and cheap when on.  This benchmark pins both claims on the
PR-7 concurrent load harness (the same seeded multi-tenant workload as
``BENCH_load``):

* **off** — the default :data:`~repro.obs.trace.NOOP_TRACER`: the
  instrumented engine must stay within a few percent of pre-subsystem
  throughput (gate: wall-clock overhead vs itself is unmeasurable, so
  the off run is the baseline and a no-op span microbench documents the
  per-call cost);
* **on** — a real tracer exporting every span to a ring buffer; the
  full-fidelity trace must cost at most a modest double-digit slice.

Also measured: raw no-op vs live span throughput (spans/s), Prometheus
rendering and JSONL export throughput.  Emits
``benchmarks/results/BENCH_obs.json`` plus the usual text table.

Set ``BENCH_OBS_SMOKE=1`` for a small-N run (CI smoke): correctness
invariants only — the overhead gates need the full scale.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.load import LoadConfig, run_load
from repro.obs import (
    NOOP_TRACER,
    MetricsRegistry,
    RingBufferExporter,
    Tracer,
    export_jsonl,
)
from repro.providers.execution import ExecutionPolicy
from repro.synth import SynthConfig, generate_catalog

SMOKE = bool(os.environ.get("BENCH_OBS_SMOKE"))

#: Overhead ceiling for tracing *on*, per the subsystem's acceptance
#: gate (full runs only; smoke runs are too noisy to gate on).
MAX_ON_OVERHEAD = 0.10

_rows: dict[str, dict] = {}


def _config(trace: bool) -> LoadConfig:
    base = dict(
        sessions=60 if SMOKE else 600,
        ops_per_session=4,
        concurrency=8 if SMOKE else 32,
        zipf_s=2.0,
        search_weight=0.40,
        overview_weight=0.25,
        explore_weight=0.10,
        suggest_weight=0.10,
        touch_weight=0.15,
    )
    return LoadConfig(trace_slowest=5 if trace else 0, **base)


def _run(trace: bool) -> dict:
    store = generate_catalog(
        SynthConfig(seed=7, n_tables=40 if SMOKE else 120)
    )
    report = run_load(
        store,
        _config(trace),
        policy=ExecutionPolicy.defaults().replace(max_workers=4),
    )
    d = report.to_dict()
    return {
        "ops": d["ops"],
        "errors": d["errors"],
        "wall_s": d["wall_s"],
        "throughput_ops_s": d["throughput_ops_s"],
        "p50_ms": d["latency_ms"]["overall"]["p50"],
        "p99_ms": d["latency_ms"]["overall"]["p99"],
        "traced_ops": len(d["slowest"]),
    }


def _span_throughput(tracer, n: int) -> float:
    started = time.perf_counter()
    for _ in range(n):
        with tracer.span("bench.op") as sp:
            if sp:
                sp.set("k", "v")
    return n / (time.perf_counter() - started)


def test_bench_obs_overhead():
    off = _run(trace=False)
    on = _run(trace=True)
    _rows["off"] = off
    _rows["on"] = on

    for row in (off, on):
        assert row["errors"] == 0
    assert off["traced_ops"] == 0
    assert 0 < on["traced_ops"] <= 5

    overhead = on["wall_s"] / off["wall_s"] - 1.0
    _rows["overhead"] = {
        "tracing_on_vs_off": round(overhead, 4),
        "gate": MAX_ON_OVERHEAD,
        "smoke": SMOKE,
    }
    if not SMOKE:
        assert overhead <= MAX_ON_OVERHEAD, (
            f"tracing-on overhead {overhead:.1%} exceeds "
            f"{MAX_ON_OVERHEAD:.0%} on the load workload"
        )


def test_bench_obs_span_microbench():
    n = 20_000 if SMOKE else 200_000
    noop_rate = _span_throughput(NOOP_TRACER, n)
    ring = RingBufferExporter(capacity=1024)
    live_rate = _span_throughput(Tracer(exporters=(ring,)), n)
    _rows["spans"] = {
        "noop_spans_per_s": round(noop_rate),
        "live_spans_per_s": round(live_rate),
        "noop_cost_ns": round(1e9 / noop_rate, 1),
        "live_cost_ns": round(1e9 / live_rate, 1),
    }
    # The no-op path must be dramatically cheaper than a live span —
    # that asymmetry is the whole point of the falsy singleton design.
    assert noop_rate > live_rate


def test_bench_obs_export_throughput():
    ring = RingBufferExporter()
    tracer = Tracer(exporters=(ring,))
    for i in range(500 if SMOKE else 5000):
        with tracer.span("op") as sp:
            sp.set("endpoint", f"x://p{i % 7}")
    spans = ring.spans()

    started = time.perf_counter()
    text = export_jsonl(spans)
    jsonl_s = time.perf_counter() - started
    assert text.count("\n") == len(spans)

    registry = MetricsRegistry()
    family = registry.counter("bench_total", ("endpoint",), "bench")
    hist = registry.histogram("bench_ms", ("endpoint",))
    for i in range(200):
        family.labels(f"x://p{i % 25}").inc()
        hist.labels(f"x://p{i % 25}").observe(float(i % 40))
    started = time.perf_counter()
    exposition = registry.render_prometheus()
    prom_s = time.perf_counter() - started
    assert "bench_total" in exposition and "bench_ms_bucket" in exposition

    _rows["export"] = {
        "jsonl_spans": len(spans),
        "jsonl_spans_per_s": round(len(spans) / jsonl_s) if jsonl_s else 0,
        "prometheus_lines": exposition.count("\n"),
        "prometheus_render_ms": round(prom_s * 1000.0, 3),
    }


def test_bench_obs_report():
    assert "overhead" in _rows, "obs benchmark did not run"
    off, on = _rows["off"], _rows["on"]
    lines = [
        f"{'config':>8}{'ops':>7}{'wall s':>9}{'ops/s':>9}"
        f"{'p50 ms':>9}{'p99 ms':>9}{'traced':>8}"
    ]
    for label, row in (("off", off), ("on", on)):
        lines.append(
            f"{label:>8}{row['ops']:>7}{row['wall_s']:>9.3f}"
            f"{row['throughput_ops_s']:>9.1f}{row['p50_ms']:>9.2f}"
            f"{row['p99_ms']:>9.2f}{row['traced_ops']:>8}"
        )
    overhead = _rows["overhead"]["tracing_on_vs_off"]
    lines.append(
        f"\ntracing-on overhead: {overhead:+.1%} wall clock "
        f"(gate {MAX_ON_OVERHEAD:.0%}{', smoke run — not gated' if SMOKE else ''})"
    )
    spans = _rows.get("spans", {})
    if spans:
        lines.append(
            f"span cost: no-op {spans['noop_cost_ns']:.0f} ns, "
            f"live {spans['live_cost_ns']:.0f} ns "
            f"({spans['noop_spans_per_s']:,} vs "
            f"{spans['live_spans_per_s']:,} spans/s)"
        )
    export = _rows.get("export", {})
    if export:
        lines.append(
            f"exporters: JSONL {export['jsonl_spans_per_s']:,} spans/s, "
            f"Prometheus {export['prometheus_lines']} lines in "
            f"{export['prometheus_render_ms']} ms"
        )
    write_result(
        "BENCH_obs",
        "Observability overhead: no-op vs live tracing on the concurrent "
        "load workload, plus exporter throughput",
        "\n".join(lines),
    )
    path = Path(RESULTS_DIR) / "BENCH_obs.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_rows, indent=2) + "\n", encoding="utf-8")
