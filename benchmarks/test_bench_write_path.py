"""BENCH_write_path — streaming writes: delta patching vs drop-and-refetch.

The streaming ingestion shape: sustained usage-event batches (applied
through :meth:`CatalogStore.record_events`, one coalesced version bump
per batch) interleaved 1:1+ with fetches of usage-dependent endpoints.
Under PR 2's invalidation alone every batch drops every usage-dependent
cache entry, so at write:search ≥ 1:1 the hit rate collapses to ≈ 0;
the delta patchers instead update cached results in place and the cache
keeps working.

Two engines run the identical seeded workload over identically seeded
catalogs:

* **delta** — builtin endpoints installed with their cache delta
  patchers (``install_builtin_endpoints(..., patchers=True)``);
* **drop** — the same endpoints with patchers stripped: every dependent
  write drops the entry (the pre-streaming behaviour).

Measured per mode: writes/sec, cache hit rate, delta patch/fallback and
coalesced-bump counters, and a stale audit — every fetch's membership
and order is compared against a fresh provider invocation on the same
store; any divergence fails the benchmark outright.

Acceptance gates: the delta engine's hit rate is at least **2×** the
drop engine's at a write:search ratio ≥ 1:1, with **zero** stale
results in either mode.

Emits ``benchmarks/results/BENCH_write_path.json`` plus a text table.
Set ``BENCH_WRITE_PATH_SMOKE=1`` for the CI-sized run.
"""

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.catalog.model import UsageEvent
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import ExecutionEngine, ExecutionPolicy
from repro.providers.registry import EndpointRegistry
from repro.synth import SynthConfig, generate_catalog

SMOKE = bool(os.environ.get("BENCH_WRITE_PATH_SMOKE"))

#: Usage events per step (one coalesced batch) — and with one fetch per
#: request per step the write:search ratio stays >= 1:1.
BATCH_SIZE = 6

_rows: dict[str, dict] = {}


def _steps() -> int:
    return 30 if SMOKE else 150


def _build_store():
    return generate_catalog(
        SynthConfig(seed=7, n_tables=120 if SMOKE else 400,
                    usage_events=500)
    )


def _requests(store):
    """The fetch keyspace: usage-dependent endpoints whose declared
    domains cover their ranking inputs, so order is oracle-checkable."""
    users = [u.id for u in store.users()[:3]]
    team = sorted(t.id for t in store.teams())[0]
    requests = [
        (
            "catalog://recents",
            ProviderRequest(inputs={"user": uid},
                            context=RequestContext(user_id=uid)),
        )
        for uid in users
    ]
    requests += [
        ("catalog://favorites",
         ProviderRequest(inputs={"user": users[0]},
                         context=RequestContext(user_id=users[0]))),
        ("catalog://most_viewed",
         ProviderRequest(context=RequestContext(user_id=users[0]))),
        ("catalog://team_popular",
         ProviderRequest(inputs={"team": team},
                         context=RequestContext(user_id=users[0],
                                                team_id=team))),
    ]
    return requests


def _run_mode(patchers: bool) -> dict:
    store = _build_store()
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store),
                              patchers=patchers)
    engine = ExecutionEngine(
        registry,
        store=store,
        policy=ExecutionPolicy.defaults().replace(cache_ttl_s=3600.0),
    )
    requests = _requests(store)
    rng = random.Random(11)
    user_ids = [u.id for u in store.users()]
    artifact_ids = store.artifact_ids()
    actions = ("view", "view", "open", "favorite")

    for uri, request in requests:  # warm the cache
        engine.execute(uri, request)
    engine.stats.reset()

    stale = 0
    writes = 0
    write_wall_s = 0.0
    steps = _steps()
    for _ in range(steps):
        batch = [
            UsageEvent(
                artifact_id=rng.choice(artifact_ids),
                user_id=rng.choice(user_ids),
                action=rng.choice(actions),
                timestamp=store.clock.now(),
            )
            for _ in range(BATCH_SIZE)
        ]
        started = time.perf_counter()
        store.record_events(batch)
        write_wall_s += time.perf_counter() - started
        writes += len(batch)
        for uri, request in requests:
            served = engine.execute(uri, request).result
            fresh = registry.resolve(uri)(request)
            if served.artifact_ids() != fresh.artifact_ids():
                stale += 1

    totals = engine.stats.snapshot()["totals"]
    hits, misses = totals["cache_hits"], totals["cache_misses"]
    engine.close()
    return {
        "mode": "delta" if patchers else "drop",
        "steps": steps,
        "writes": writes,
        "searches": steps * len(requests),
        "write_search_ratio": round(writes / (steps * len(requests)), 2),
        "writes_per_s": round(writes / write_wall_s, 1)
        if write_wall_s > 0 else 0.0,
        "hit_rate": round(hits / (hits + misses), 4)
        if hits + misses else 0.0,
        "cache_hits": hits,
        "cache_misses": misses,
        "endpoint_calls": totals["calls"],
        "invalidations": totals["invalidations"],
        "delta_patches": totals["delta_patches"],
        "delta_fallbacks": totals["delta_fallbacks"],
        "coalesced_bumps": totals["coalesced_bumps"],
        "stale_results": stale,
    }


def test_bench_write_path_workload():
    delta = _run_mode(patchers=True)
    drop = _run_mode(patchers=False)
    _rows["delta"] = delta
    _rows["drop"] = drop

    # Correctness is never traded for the hit rate.
    assert delta["stale_results"] == 0, delta
    assert drop["stale_results"] == 0, drop
    # Each step's batch coalesced into a single version bump.
    assert delta["coalesced_bumps"] == delta["steps"] * (BATCH_SIZE - 1)
    # The headline gate: at write:search >= 1:1 the delta engine keeps
    # at least twice the drop engine's hit rate.
    assert delta["write_search_ratio"] >= 1.0, delta
    assert delta["hit_rate"] >= 2 * max(drop["hit_rate"], 0.05), (
        delta, drop,
    )
    # The patch path actually ran — this is not a vacuous comparison.
    assert delta["delta_patches"] > 0, delta


def test_bench_write_path_report():
    assert _rows, "workload benchmark did not run"
    lines = [
        f"{'engine':>7}{'steps':>7}{'writes':>8}{'w/s':>10}"
        f"{'hit rate':>10}{'hits':>7}{'misses':>8}{'calls':>7}"
        f"{'inval':>7}{'patch':>7}{'dfall':>7}{'coal':>7}{'stale':>7}"
    ]
    for label, row in _rows.items():
        lines.append(
            f"{label:>7}{row['steps']:>7}{row['writes']:>8}"
            f"{row['writes_per_s']:>10.1f}{row['hit_rate']:>10.3f}"
            f"{row['cache_hits']:>7}{row['cache_misses']:>8}"
            f"{row['endpoint_calls']:>7}{row['invalidations']:>7}"
            f"{row['delta_patches']:>7}{row['delta_fallbacks']:>7}"
            f"{row['coalesced_bumps']:>7}{row['stale_results']:>7}"
        )
    write_result(
        "BENCH_write_path",
        "Streaming writes: delta-patched caches vs drop-and-refetch "
        "(batched usage events, write:search >= 1:1)",
        "\n".join(lines),
    )
    payload = {
        "workload": {
            "batch_size": BATCH_SIZE,
            "fetches_per_step": _rows["delta"]["searches"]
            // _rows["delta"]["steps"],
            "smoke": SMOKE,
        },
        "engines": _rows,
    }
    path = Path(RESULTS_DIR) / "BENCH_write_path.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
