"""BENCH_invalidation — dependency-aware cache invalidation under writes.

The workload a production catalog actually sees: a steady stream of
usage events (views, opens) interleaved with discovery searches whose
provider membership does not depend on usage.  Before per-domain
versioning, every ``store.record`` flushed the whole result cache, so
this workload measured a hit rate of ≈ 0; with declared dependencies the
annotation/relatedness results survive and the cache does its job.

Measures, on a ~1k-artifact synthetic catalog:

* cache hit rate of the dependency-aware engine on the mixed
  read/write workload, versus the same engine forced into the old
  coupled behaviour (every endpoint treated as undeclared);
* endpoint invocations saved and invalidation counter totals;
* a stale-result audit: every search's membership is compared against
  a cache-disabled engine on the same store — any divergence fails the
  benchmark outright.

Emits ``benchmarks/results/BENCH_invalidation.json`` plus a text table.
Set ``BENCH_INVALIDATION_SMOKE=1`` for the CI-sized run.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.providers.execution import ExecutionPolicy
from repro.synth import SynthConfig, generate_catalog
from repro.workbook.app import WorkbookApp

_rows: dict[str, dict] = {}

#: Searches whose membership is independent of usage traffic; values are
#: bound against the synth catalog below.
QUERY_TEMPLATES = (
    "type: table",
    "type: workbook",
    "tagged: sales",
    "badged: endorsed",
    "owned_by: {owner}",
    "type: table & tagged: sales",
)


def _iterations() -> int:
    return 40 if os.environ.get("BENCH_INVALIDATION_SMOKE") else 200


def _build_store():
    return generate_catalog(
        SynthConfig(seed=7, n_tables=550, usage_events=1000)
    )


def _queries(store) -> list[str]:
    owner = store.users()[0].name
    return [template.format(owner=owner) for template in QUERY_TEMPLATES]


def _run_workload(app, store, queries, iterations, oracle=None) -> dict:
    """Interleave usage writes with searches; optionally audit vs oracle.

    *oracle* is a cache-disabled app on the same store; when given,
    every search's membership must match it exactly.
    """
    user = store.users()[0]
    artifact_ids = store.artifact_ids()
    app.stats.reset()
    app.engine.invalidate()
    stale = 0
    for step in range(iterations):
        # One usage write per step: the traffic that used to flush
        # everything.
        store.record(artifact_ids[step % len(artifact_ids)], user.id, "view")
        query = queries[step % len(queries)]
        result, _ = app.interface.search(query, user_id=user.id, limit=10)
        if oracle is not None:
            expected, _ = oracle.interface.search(
                query, user_id=user.id, limit=10
            )
            if result.artifact_ids() != expected.artifact_ids():
                stale += 1
    return {
        "iterations": iterations,
        "cache_hit_rate": app.stats.cache_hit_rate,
        "cache_hits": app.stats.cache_hits,
        "cache_misses": app.stats.cache_misses,
        "endpoint_calls": app.stats.total_calls,
        "invalidations": app.stats.invalidations,
        "stale_results": stale,
    }


def test_bench_invalidation_workload():
    iterations = _iterations()
    store = _build_store()
    queries = _queries(store)

    # Ground truth: identical store, caching disabled entirely.
    oracle = WorkbookApp(store)
    oracle.engine.policy = ExecutionPolicy.defaults().replace(cache_ttl_s=0)

    with WorkbookApp(store) as app:
        aware = _run_workload(app, store, queries, iterations, oracle=oracle)

    # The pre-tentpole behaviour: no endpoint declares anything, so any
    # write flushes every entry (the conservative fallback path).
    with WorkbookApp(store) as app:
        app.engine.dependencies_for = lambda endpoint: None
        coupled = _run_workload(app, store, queries, iterations)

    oracle.close()
    _rows["aware"] = aware
    _rows["coupled"] = coupled

    # The acceptance bar: the cache survives usage traffic...
    assert aware["cache_hit_rate"] >= 0.8, aware
    # ...where the coupled engine loses essentially everything...
    assert coupled["cache_hit_rate"] < 0.1, coupled
    # ...and correctness is not traded away for it.
    assert aware["stale_results"] == 0, aware


def test_bench_invalidation_report():
    assert _rows, "workload benchmark did not run"
    lines = [
        f"{'engine':>9}{'iters':>7}{'hit rate':>10}{'hits':>7}"
        f"{'misses':>8}{'calls':>7}{'inval':>7}{'stale':>7}"
    ]
    for label, row in _rows.items():
        lines.append(
            f"{label:>9}{row['iterations']:>7}"
            f"{row['cache_hit_rate']:>10.2f}{row['cache_hits']:>7}"
            f"{row['cache_misses']:>8}{row['endpoint_calls']:>7}"
            f"{row['invalidations']:>7}{row['stale_results']:>7}"
        )
    write_result(
        "BENCH_invalidation",
        "Cache hit rate under interleaved usage writes: "
        "dependency-aware vs coupled invalidation",
        "\n".join(lines),
    )
    payload = {
        "workload": {
            "queries": len(QUERY_TEMPLATES),
            "write_per_search": 1,
        },
        "engines": _rows,
    }
    path = Path(RESULTS_DIR) / "BENCH_invalidation.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
