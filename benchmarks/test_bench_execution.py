"""BENCH_execution — the provider execution layer's perf trajectory.

Measures, at ~1k and ~50k artifacts:

* overview generation wall-clock on the pre-engine **serial** path
  (a direct ``registry.fetch`` loop) versus the engine's parallel
  fan-out, cold and warm cache — the warm path is what a production
  deployment serves overview regenerations from;
* cache hit rate after a repeated-interaction workload;
* per-fetch latency percentiles from :class:`ExecutionStats`;
* text-search latency with the catalog's token-set cache cold vs warm
  (the ``_text_base_scores`` optimisation).

Emits ``benchmarks/results/BENCH_execution.json`` so successive PRs can
track the numbers, plus the usual text table.

Set ``BENCH_EXECUTION_SMOKE=1`` to run the small size only (CI smoke).
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.errors import MissingInputError, ProviderError
from repro.providers.base import ProviderRequest, RequestContext
from repro.synth import SynthConfig, generate_catalog
from repro.workbook.app import WorkbookApp

#: label -> n_tables (the generator adds dashboards/workbooks/documents,
#: so artifact counts land near the labels).
SIZES = {"1k": 550, "50k": 27500}

_rows: dict[str, dict] = {}


def _sizes() -> dict[str, int]:
    if os.environ.get("BENCH_EXECUTION_SMOKE"):
        return {"1k": SIZES["1k"]}
    return dict(SIZES)


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def serial_overview(interface, user_id: str, limit: int = 20) -> list:
    """The pre-engine overview path: one registry fetch per provider,
    serial, fault containment inlined — kept here as the baseline."""
    providers = interface.customization.effective_providers(
        interface.spec, "overview", user_id=user_id, team_id=""
    )
    context = RequestContext(user_id=user_id, limit=limit)
    tabs = []
    for provider in providers:
        inputs = interface._ambient_inputs(provider, user_id, "")
        if not provider.is_ready(inputs):
            continue
        try:
            result = interface.registry.fetch(
                provider.endpoint,
                ProviderRequest(inputs=inputs, context=context),
            )
            view = interface.factory.build(provider, result, inputs=inputs)
        except MissingInputError:
            continue
        except ProviderError:
            continue
        tabs.append((provider.name, view))
    return tabs


def _measure(label: str, n_tables: int) -> dict:
    store = generate_catalog(
        SynthConfig(seed=7, n_tables=n_tables,
                    usage_events=max(1000, n_tables // 2))
    )
    app = WorkbookApp(store)
    user = store.users()[0]
    rounds = 3 if n_tables < 5000 else 2

    serial_s = _best_of(
        lambda: serial_overview(app.interface, user.id), rounds=rounds
    )

    def engine_cold():
        app.engine.invalidate()
        app.interface.overview_tabs(user_id=user.id)

    engine_cold_s = _best_of(engine_cold, rounds=rounds)

    app.interface.overview_tabs(user_id=user.id)  # warm the cache
    engine_warm_s = _best_of(
        lambda: app.interface.overview_tabs(user_id=user.id), rounds=rounds
    )

    # A repeated-interaction workload: the same home screen and query,
    # over and over, as a returning user would.
    app.stats.reset()
    app.engine.invalidate()
    for _ in range(5):
        app.interface.overview_tabs(user_id=user.id)
        app.interface.search("type: table", user_id=user.id, limit=10)
    hit_rate = app.stats.cache_hit_rate

    snapshot = app.stats.snapshot()
    newest = snapshot["endpoints"].get("catalog://newest", {})
    latency = newest.get("latency_ms", {"p50": 0.0, "p95": 0.0})

    # Token-set cache: text scoring cold (cache cleared each round) vs
    # warm.  Only catalog-side memoisation differs between the runs.
    target = store.artifact(store.by_type("table")[0])
    text_query = target.name.lower().split("_")[0]

    def text_search_cold():
        store.clear_token_cache()
        app.interface.search(text_query, limit=10)

    text_cold_s = _best_of(text_search_cold, rounds=rounds)
    text_warm_s = _best_of(
        lambda: app.interface.search(text_query, limit=10), rounds=rounds
    )

    return {
        "artifacts": store.artifact_count,
        "overview_serial_ms": serial_s * 1000,
        "overview_engine_cold_ms": engine_cold_s * 1000,
        "overview_engine_warm_ms": engine_warm_s * 1000,
        "overview_speedup_vs_serial": serial_s / engine_warm_s,
        "cache_hit_rate": hit_rate,
        "fetch_p50_ms": latency["p50"],
        "fetch_p95_ms": latency["p95"],
        "text_search_cold_ms": text_cold_s * 1000,
        "text_search_warm_ms": text_warm_s * 1000,
    }


def test_bench_execution_sizes():
    for label, n_tables in _sizes().items():
        row = _measure(label, n_tables)
        _rows[label] = row
        # The engine's warm path (what repeated interactions hit) must
        # beat the serial pre-engine path at every size.
        assert row["overview_engine_warm_ms"] < row["overview_serial_ms"], (
            f"{label}: warm engine overview slower than serial baseline"
        )
        # Repeated workload on an unchanged catalog is cache-dominated.
        assert row["cache_hit_rate"] > 0.5
        # Token-set memoisation must not regress text search.
        assert row["text_search_warm_ms"] <= row["text_search_cold_ms"] * 1.1


def test_bench_execution_report():
    assert _rows, "size benchmark did not run"
    lines = [
        f"{'size':>6}{'artifacts':>10}{'serial ms':>11}{'cold ms':>9}"
        f"{'warm ms':>9}{'speedup':>9}{'hit rate':>10}"
        f"{'txt cold':>10}{'txt warm':>10}"
    ]
    for label, row in _rows.items():
        lines.append(
            f"{label:>6}{row['artifacts']:>10}"
            f"{row['overview_serial_ms']:>11.1f}"
            f"{row['overview_engine_cold_ms']:>9.1f}"
            f"{row['overview_engine_warm_ms']:>9.1f}"
            f"{row['overview_speedup_vs_serial']:>9.1f}"
            f"{row['cache_hit_rate']:>10.2f}"
            f"{row['text_search_cold_ms']:>10.1f}"
            f"{row['text_search_warm_ms']:>10.1f}"
        )
    write_result(
        "BENCH_execution",
        "Provider execution layer: serial vs engine overview, cache rates",
        "\n".join(lines),
    )
    payload = {"sizes": _rows}
    path = Path(RESULTS_DIR) / "BENCH_execution.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
