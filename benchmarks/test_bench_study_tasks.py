"""E1 — Section 7.2 task outcomes.

Regenerates the paper's task-result narrative as a table: completion,
assisted-participant counts and the Task 1 strategy split, measured by
running the full simulated study against the generated interface.  The
benchmark times one complete six-participant study run.
"""

from benchmarks.conftest import write_result
from repro.study.executor import run_study
from repro.study.report import PAPER_TASK_RESULTS, task_outcome_table


def test_e1_study_task_outcomes(benchmark):
    run = benchmark(run_study)

    table = task_outcome_table(run)
    write_result("E1_study_tasks", "Task outcomes (Section 7.2)", table)

    # Shape assertions: measured counts must equal the paper's.
    for task_id, reference in PAPER_TASK_RESULTS.items():
        outcomes = run.outcomes_for(task_id)
        assert sum(o.completed for o in outcomes) == reference["completed"]
        assert run.assisted_participants(task_id) == reference["assisted"]
    assert run.strategy_split("T1") == {
        "search-first": 3, "views-first": 3,
    }
