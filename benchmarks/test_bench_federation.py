"""BENCH_federation — fan-out over 4 member catalogs vs one monolith.

Two sub-experiments over one corpus partitioned round-robin into 4
disjoint members:

* **healthy fan-out (wall clock)** — the study-task query mix runs on
  the merged monolith and on the federation with caching disabled, so
  every search pays full provider work on both sides.  The federated
  p50 must stay within a small constant factor of the monolith's (the
  fan-out adds merge overhead, not asymptotic cost), and every returned
  entry must be attributed to the member that owns it — zero
  cross-catalog leakage.

* **one slow member (simulated clock)** — one member's search endpoint
  burns a 250ms latency spike and fails on every invocation.  With the
  breaker off the fan-out waits out the full retry schedule on every
  search; with per-member breaker state (threshold 3) the first three
  failures trip the breaker and later searches degrade instantly to
  partial results.  Degradation-on p99 must be **strictly** below
  fan-out-waiting p99.

Emits ``benchmarks/results/BENCH_federation.json`` plus the text table.
Set ``BENCH_FEDERATION_SMOKE=1`` for the small-catalog CI smoke run.
"""

import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.federation import federate, member_search_endpoint_uri
from repro.load.workload import query_pool
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import (
    ExecutionEngine,
    ExecutionPolicy,
    RequestContext,
)
from repro.providers.faults import FlakyEndpoint, LatencySpikeEndpoint
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog
from repro.util.clock import SimulationClock

PARTS = 4
SLOW_MEMBER = "cat3"
SPIKE_MS = 250.0
ATTEMPTS = 3
THRESHOLD = 3
#: Enough searches that the three breaker-warming failures fall outside
#: the p99 nearest-rank index.
SLOW_SEARCHES = 400
#: Federated p50 must stay within this factor of the monolith p50: the
#: fan-out re-does the same total scoring work in 4 smaller slices plus
#: a merge, so a small constant bound is the "comparable" claim.
P50_FACTOR = 4.0

_rows: dict[str, dict] = {}


def _smoke() -> bool:
    return bool(os.environ.get("BENCH_FEDERATION_SMOKE"))


def _corpus():
    n_tables = 80 if _smoke() else 400
    events = 1500 if _smoke() else 8000
    return generate_catalog(
        SynthConfig(seed=11, n_tables=n_tables, usage_events=events)
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    index = max(0, math.ceil(q / 100.0 * len(sorted_values)) - 1)
    return sorted_values[index]


def _context(store) -> tuple[str, str]:
    user = store.users()[0]
    teams = store.teams_of(user.id)
    return user.id, teams[0].id if teams else ""


def test_bench_federation_healthy_fanout_comparable_p50():
    store = _corpus()
    user_id, team_id = _context(store)
    queries = query_pool(store)
    rounds = 3 if _smoke() else 10
    no_cache = ExecutionPolicy.defaults().replace(cache_ttl_s=0)

    engine = ExecutionEngine(EndpointRegistry(), store=store, policy=no_cache)
    install_builtin_endpoints(engine.registry, BuiltinProviders(store))
    mono = QueryEvaluator(
        store, engine, QueryLanguage(default_spec()),
        Ranker(FieldResolver(store)),
    )
    mono_ms: list[float] = []
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            mono.search(
                query,
                context=RequestContext(user_id=user_id, team_id=team_id),
                limit=50,
            )
            mono_ms.append((time.perf_counter() - started) * 1000.0)
    engine.close()

    federation, partition = federate(store, PARTS, policy=no_cache)
    fed_ms: list[float] = []
    leakage = 0
    checked = 0
    for _ in range(rounds):
        for query in queries:
            started = time.perf_counter()
            result = federation.search(
                query, user_id=user_id, team_id=team_id, limit=50
            )
            fed_ms.append((time.perf_counter() - started) * 1000.0)
            assert not result.degraded
            for entry in result.entries:
                checked += 1
                if partition.assignment[entry.ref.artifact_id] != entry.ref.catalog_id:
                    leakage += 1
    federation.close()

    mono_ms.sort()
    fed_ms.sort()
    row = {
        "searches": len(fed_ms),
        "monolith_p50_ms": _percentile(mono_ms, 50),
        "monolith_p99_ms": _percentile(mono_ms, 99),
        "federated_p50_ms": _percentile(fed_ms, 50),
        "federated_p99_ms": _percentile(fed_ms, 99),
        "p50_ratio": _percentile(fed_ms, 50) / max(_percentile(mono_ms, 50), 1e-9),
        "entries_checked": checked,
        "leaked_entries": leakage,
    }
    _rows["healthy_fanout"] = row

    assert leakage == 0, f"{leakage} entries attributed to the wrong catalog"
    assert checked > 0
    assert row["federated_p50_ms"] <= row["monolith_p50_ms"] * P50_FACTOR, (
        f"federated p50 {row['federated_p50_ms']:.2f}ms not comparable to "
        f"monolith {row['monolith_p50_ms']:.2f}ms (bound {P50_FACTOR}x)"
    )


def _run_slow_member(store, degradation_on: bool) -> dict:
    clock = SimulationClock()
    policy = ExecutionPolicy.defaults().replace(attempts=ATTEMPTS)
    uri = member_search_endpoint_uri(SLOW_MEMBER)
    if degradation_on:
        policy = policy.for_endpoint(uri, breaker_failure_threshold=THRESHOLD)
    else:
        policy = policy.replace(breaker_enabled=False)
    federation, _ = federate(store, PARTS, policy=policy, clock=clock)
    user_id, team_id = _context(store)

    # The slow member: every invocation burns a full simulated spike and
    # then fails, so without a breaker each search pays SPIKE x ATTEMPTS.
    original = federation.registry.resolve(uri)
    broken = LatencySpikeEndpoint(
        FlakyEndpoint(original, fail_on=lambda i: True, name=SLOW_MEMBER),
        clock,
        [SPIKE_MS],
    )
    federation.registry.register(uri, broken, replace=True)

    queries = query_pool(store)
    latencies: list[float] = []
    degraded = partial = 0
    for index in range(SLOW_SEARCHES):
        query = queries[index % len(queries)]
        started = clock.now()
        result = federation.search(
            query, user_id=user_id, team_id=team_id, limit=50
        )
        latencies.append((clock.now() - started) * 1000.0)
        degraded += int(result.degraded)
        partial += int(SLOW_MEMBER in result.failed)
    stats = federation.engine.stats
    row = {
        "p50_ms": _percentile(sorted(latencies), 50),
        "p99_ms": _percentile(sorted(latencies), 99),
        "mean_ms": sum(latencies) / len(latencies),
        "degraded_searches": degraded,
        "partial_searches": partial,
        "breaker_opens": stats.breaker_opens,
        "breaker_rejections": stats.breaker_rejections,
    }
    federation.close()
    return row


def test_bench_federation_slow_member_bounded_tail():
    store = _corpus()
    off = _run_slow_member(store, degradation_on=False)
    on = _run_slow_member(store, degradation_on=True)
    _rows["slow_member_breaker_off"] = off
    _rows["slow_member_breaker_on"] = on
    _rows["_meta"] = {
        "artifacts": store.artifact_count,
        "parts": PARTS,
        "slow_member": SLOW_MEMBER,
        "searches": SLOW_SEARCHES,
        "spike_ms": SPIKE_MS,
        "attempts": ATTEMPTS,
        "failure_threshold": THRESHOLD,
        "smoke": _smoke(),
    }

    # Every search still answers (partial results), on both configs.
    assert off["degraded_searches"] == SLOW_SEARCHES
    assert on["degraded_searches"] == SLOW_SEARCHES
    assert on["partial_searches"] == SLOW_SEARCHES

    # Fan-out-waiting pays the full retry schedule on the slow member.
    assert off["p50_ms"] >= SPIKE_MS * ATTEMPTS
    assert on["breaker_opens"] >= 1

    # The headline: degradation-on strictly bounds the tail.
    assert on["p99_ms"] < off["p99_ms"], (
        f"degradation-on p99 {on['p99_ms']:.1f}ms not strictly below "
        f"fan-out-waiting {off['p99_ms']:.1f}ms"
    )
    assert on["p50_ms"] < off["p50_ms"]


def test_bench_federation_report():
    assert "healthy_fanout" in _rows, "healthy fan-out benchmark did not run"
    assert "slow_member_breaker_on" in _rows, "slow-member benchmark did not run"
    healthy = _rows["healthy_fanout"]
    lines = [
        "healthy fan-out (wall clock, caching disabled):",
        f"  monolith   p50={healthy['monolith_p50_ms']:.2f}ms "
        f"p99={healthy['monolith_p99_ms']:.2f}ms",
        f"  federated  p50={healthy['federated_p50_ms']:.2f}ms "
        f"p99={healthy['federated_p99_ms']:.2f}ms "
        f"(p50 ratio {healthy['p50_ratio']:.2f}x, bound {P50_FACTOR:.0f}x)",
        f"  leakage: {healthy['leaked_entries']}/{healthy['entries_checked']} "
        "entries misattributed",
        "",
        "one slow member (simulated clock):",
        f"{'config':>16}{'p50 ms':>9}{'p99 ms':>9}{'mean ms':>9}"
        f"{'partial':>9}{'opens':>7}{'rejects':>9}",
    ]
    for label in ("slow_member_breaker_off", "slow_member_breaker_on"):
        row = _rows[label]
        lines.append(
            f"{label[12:]:>16}{row['p50_ms']:>9.1f}{row['p99_ms']:>9.1f}"
            f"{row['mean_ms']:>9.1f}{row['partial_searches']:>9}"
            f"{row['breaker_opens']:>7}{row['breaker_rejections']:>9}"
        )
    meta = _rows["_meta"]
    lines.append(
        f"\n{meta['parts']} members, {meta['searches']} searches, one slow "
        f"member ({meta['spike_ms']:.0f}ms spike x {meta['attempts']} "
        f"attempts), threshold {meta['failure_threshold']}, "
        f"{meta['artifacts']} artifacts"
    )
    write_result(
        "BENCH_federation",
        "Federated fan-out vs monolith, and tail latency under one slow "
        "member: degradation on vs off",
        "\n".join(lines),
    )
    path = Path(RESULTS_DIR) / "BENCH_federation.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_rows, indent=2) + "\n", encoding="utf-8")
