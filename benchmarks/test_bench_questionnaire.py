"""E2 — Figure 8: post-study questionnaire statistics.

Regenerates the per-statement and per-category Likert statistics (mean,
std, %positive/%negative) from the simulated study and checks the paper's
shape: search and previews highest, finding-views and layout lowest,
overall mean ≈ 3.97.  Times the affordance measurement + rating derivation.
"""

import pytest

from benchmarks.conftest import write_result
from repro.study.executor import run_study
from repro.study.questionnaire import STATEMENTS, answer_questionnaire
from repro.study.report import PAPER_OVERALL, figure8_chart, questionnaire_table
from repro.study.stats import category_stats


@pytest.fixture(scope="module")
def run():
    return run_study()


def test_e2_questionnaire_figure8(benchmark, run):
    responses = benchmark(answer_questionnaire, run)

    table = questionnaire_table(run) + "\n\n" + figure8_chart(run)
    write_result("E2_questionnaire", "Figure 8 questionnaire", table)

    # Also regenerate the figure itself (SVG next to the tables).
    from benchmarks.conftest import RESULTS_DIR
    from repro.study.figures import save_figure8

    save_figure8(run, RESULTS_DIR / "E2_figure8.svg")

    stats = category_stats(responses)
    by_cat = stats.by_category

    # Figure 8 shape: search strongest, entry points weakest.
    assert by_cat["search"].mean == max(s.mean for s in by_cat.values())
    assert by_cat["entry_points"].mean == min(
        s.mean for s in by_cat.values()
    )

    # Items the paper reports stay within half a Likert point.
    for statement in STATEMENTS:
        if statement.paper_reference is None:
            continue
        paper_mean, _ = statement.paper_reference
        measured = stats.by_statement[statement.sid].mean
        assert abs(measured - paper_mean) < 0.6, statement.sid

    # Overall near the paper's 3.97 ± 0.85.
    assert abs(stats.overall.mean - PAPER_OVERALL[0]) < 0.35
    assert abs(stats.overall.std - PAPER_OVERALL[1]) < 0.35
