"""E3 — Expressivity / change cost (Sections 1 and 6).

The paper's claim: enabling new metadata "is just a matter of adding a few
lines of specification instead of changing the UI implementation".  This
benchmark quantifies it: spec elements touched (and JSON lines added) to
add/remove/retune a provider under Humboldt, versus code sites and lines
touched in the feature-equivalent hardcoded baseline.  Also times spec
compile → interface regeneration, the operation that replaces a deploy.
"""

import json

from benchmarks.conftest import write_result
from repro.baselines.hardcoded import HardcodedDiscoveryUI
from repro.core.spec import diff_specs, spec_to_dict
from repro.core.spec.model import ProviderSpec, RankingWeight
from repro.providers.base import ProviderRequest, ProviderResult, Representation
from repro.providers.suite import default_spec


def _new_provider() -> ProviderSpec:
    return ProviderSpec(
        name="trending",
        endpoint="model://trending",
        representation="tiles",
        category="interaction",
        title="Trending",
        description="Mock ML model scoring tables by view acceleration.",
    )


def _spec_json_lines(provider: ProviderSpec) -> int:
    """Lines of JSON one provider entry adds to the spec document."""
    from repro.core.spec.serialization import _provider_to_dict

    return len(json.dumps(_provider_to_dict(provider), indent=2).splitlines())


def test_e3_change_cost_add_provider(benchmark, bench_app):
    spec = default_spec()
    new = _new_provider()

    def add_and_regenerate():
        updated = spec.with_provider(new)
        bench_app.registry.register(
            "model://trending",
            lambda request: ProviderResult(
                representation=Representation.TILES
            ),
            replace=True,
        )
        interface = bench_app.interface.with_spec(updated)
        return interface

    interface = benchmark(add_and_regenerate)
    assert "trending" in interface.language.field_names()

    humboldt_diff = diff_specs(spec, spec.with_provider(new))
    humboldt_lines = _spec_json_lines(new)
    hardcoded_sites = HardcodedDiscoveryUI.change_cost_add_source()
    hardcoded_lines = sum(hardcoded_sites.values())

    rows = [
        f"{'system':<12}{'code sites touched':>20}{'lines touched':>16}",
        f"{'Humboldt':<12}{humboldt_diff.touched_elements():>20}"
        f"{humboldt_lines:>16}  (spec JSON only)",
        f"{'hardcoded':<12}{len(hardcoded_sites):>20}"
        f"{hardcoded_lines:>16}  (UI source code)",
        "",
        "hardcoded sites: " + ", ".join(
            f"{site} ({lines} loc)" for site, lines in hardcoded_sites.items()
        ),
        "",
        f"paper claim: adding a provider is 'a few lines of specification' "
        f"-> measured {humboldt_lines} spec lines vs {hardcoded_lines} "
        f"source lines across {len(hardcoded_sites)} sites",
    ]
    write_result("E3_expressivity", "Change cost: add a metadata provider",
                 "\n".join(rows))

    # Shape: Humboldt touches exactly one spec element; the hardcoded UI
    # touches several code sites and strictly more lines.
    assert humboldt_diff.touched_elements() == 1
    assert len(hardcoded_sites) >= 5
    assert hardcoded_lines > humboldt_lines


def test_e3_ranking_retune_is_one_element(benchmark):
    spec = default_spec()

    def retune():
        return spec.with_global_ranking(
            RankingWeight("favorite", 9.0), RankingWeight("views", 0.5)
        )

    updated = benchmark(retune)
    diff = diff_specs(spec, updated)
    assert diff.global_ranking_changed
    assert diff.touched_elements() == 1


def test_e3_spec_document_size(benchmark):
    """The whole 20-provider Figure 2 suite is a small JSON document."""
    spec = default_spec()
    payload = benchmark(spec_to_dict, spec)
    total_lines = len(json.dumps(payload, indent=2).splitlines())
    write_result(
        "E3b_spec_size",
        "Size of the full default specification",
        f"providers: {len(spec)}\n"
        f"spec JSON lines: {total_lines}\n"
        f"lines per provider: {total_lines / len(spec):.1f}",
    )
    assert total_lines < 40 * len(spec)
