"""E10 — Directed-search quality: metadata queries vs. plain keywords.

"A normal search bar is not enough for more complex queries" (§3.1).
For each study-task target, measure the 1-based rank of the target under
(a) the Humboldt metadata query and (b) the keyword baseline given only
the terms a user would type.  Shape: metadata queries pin targets at or
near rank 1 and filter out the noise keyword search cannot express.
"""

from benchmarks.conftest import write_result
from repro.baselines.keyword import KeywordSearchBaseline

#: (label, metadata query, keyword query, target artifact id)
CASES = (
    ("T1 target",
     "type: table badged: endorsed & AIRLINES",
     "AIRLINES endorsed",
     "table-airlines"),
    ("flagship",
     "type: table owned_by: 'Alex' badged: endorsed badged_by: 'Mike' "
     "& 'sales'",
     "sales numbers table",
     "table-sales-numbers"),
    ("T3 workbook",
     "type: workbook created_by: 'John Doe' & 'Q1'",
     "John Doe Q1",
     "workbook-john-1"),
)


def metadata_rank(app, query: str, target: str) -> "int | None":
    result, _ = app.interface.search(query, user_id="user-alex", limit=1000)
    ids = result.artifact_ids()
    return ids.index(target) + 1 if target in ids else None


def test_e10_metadata_vs_keyword_rank(benchmark, bench_app):
    baseline = KeywordSearchBaseline(bench_app.store).build()

    def evaluate_all():
        rows = []
        for label, metadata_query, keyword_query, target in CASES:
            rows.append((
                label,
                metadata_rank(bench_app, metadata_query, target),
                baseline.rank_of(keyword_query, target),
                len(bench_app.interface.search(
                    metadata_query, user_id="user-alex", limit=1000
                )[0].artifact_ids()),
                len(baseline.search(keyword_query, limit=1000)),
            ))
        return rows

    rows = benchmark(evaluate_all)

    lines = [
        f"{'case':<14}{'metadata rank':>14}{'keyword rank':>14}"
        f"{'metadata results':>18}{'keyword results':>17}"
    ]
    for label, m_rank, k_rank, m_total, k_total in rows:
        lines.append(
            f"{label:<14}{str(m_rank):>14}{str(k_rank):>14}"
            f"{m_total:>18}{k_total:>17}"
        )
    write_result("E10_search_quality",
                 "Directed search: metadata query vs keyword baseline",
                 "\n".join(lines))

    # Shape: every target is found by its metadata query at a rank no
    # worse than the keyword baseline manages (which may miss entirely).
    for label, m_rank, k_rank, _, _ in rows:
        assert m_rank is not None, label
        if k_rank is not None:
            assert m_rank <= k_rank, label


def test_e10_badge_constraints_unreachable_by_keywords(benchmark, bench_app):
    """Badges are metadata, not text — keyword search cannot see them."""
    baseline = KeywordSearchBaseline(bench_app.store).build()

    def count_both():
        metadata_hits = bench_app.interface.search(
            "badged: endorsed", limit=1000
        )[0].total
        keyword_hits = len(baseline.search("endorsed", limit=1000))
        return (metadata_hits, keyword_hits)

    metadata_hits, keyword_hits = benchmark(count_both)
    assert metadata_hits >= 5
    assert keyword_hits == 0
