"""E7 — Figure 4 / Listing 2: team home-page configuration.

Times the full Task 4 operation — an admin selects providers, the spec's
custom content is rewritten, the interface regenerates, and the team's
home page renders the chosen providers — plus user-level hide/reorder.
"""

from benchmarks.conftest import write_result
from repro.study.executor import prepare_study_app


def test_e7_configure_team_home_page(benchmark):
    app, team_id = prepare_study_app()
    admin = "user-p1"

    def configure():
        session = app.session(admin, team_id=team_id)
        session.switch_role("team_admin")
        session.configure_team_home_page(
            ["team_popular", "recents", "badges"], team_id=team_id
        )
        return app.home_pages.home_page(team_id, user_id=admin)

    page = benchmark(configure)
    assert page.provider_names() == ["team_popular", "recents", "badges"]

    listing2 = app.spec.custom["team_home_pages"][-1]
    write_result(
        "E7_customization",
        "Listing 2 / Figure 4: team home page configuration",
        f"configured page entry (custom content):\n  {listing2}\n\n"
        f"rendered tabs: {page.provider_names()}\n"
        f"title: {page.title}",
    )


def test_e7_user_hide_and_reorder(benchmark, bench_app):
    user_id = "user-alex"

    def customize():
        layer = bench_app.customization.user_layer(user_id)
        layer.hidden.clear()
        layer.order.clear()
        layer.hide("newest")
        layer.set_order(["most_viewed", "recents"])
        return bench_app.customization.effective_providers(
            bench_app.spec, "overview", user_id=user_id
        )

    providers = benchmark(customize)
    names = [p.name for p in providers]
    assert names[0] == "most_viewed"
    assert "newest" not in names


def test_e7_layers_compose(benchmark, bench_app):
    """org hide + team hide + user order apply together."""
    custom = bench_app.customization
    custom.org.hide("embedding_map")
    custom.team_layer("team-00001").hide("badges")
    custom.user_layer("user-mike").set_order(["types"])
    providers = benchmark(
        custom.effective_providers,
        bench_app.spec, "overview", user_id="user-mike",
        team_id="team-00001",
    )
    names = [p.name for p in providers]
    assert "embedding_map" not in names
    assert "badges" not in names
    assert names[0] == "types"
    # cleanup for other benches sharing the session-scoped app
    custom.org.unhide("embedding_map")
    custom.reset_team("team-00001")
    custom.reset_user("user-mike")
