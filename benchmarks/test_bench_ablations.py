"""E11 — Ablations of design choices called out in DESIGN.md.

(a) Ensemble relatedness (TF-IDF + schema) vs. each single measure — the
    paper's §2 discussion of D3L/Voyager's ensemble advantage.  Metric:
    for tables with known join partners (shared key columns), how often a
    true partner appears in the top-5 similar list.
(b) Spec-driven autocomplete vs. a hand-kept static field list — coverage
    of the actual query surface after the spec evolves.
"""

from benchmarks.conftest import write_result
from repro.baselines.hardcoded import HardcodedDiscoveryUI
from repro.core.spec.model import ProviderSpec
from repro.metadata.joinability import JoinabilityIndex
from repro.metadata.similarity import (
    EnsembleSimilarity,
    SchemaSimilarity,
    SemanticSimilarity,
)


def _hit_rate(measure, truth: dict[str, set[str]], k: int = 5) -> float:
    """Fraction of query tables with ≥1 true partner in the top-k."""
    hits = 0
    for table_id, partners in truth.items():
        top = {h.artifact_id for h in measure.similar(table_id, limit=k)}
        if top & partners:
            hits += 1
    return hits / len(truth) if truth else 0.0


def test_e11_ensemble_vs_single_measure(benchmark, mid_store):
    # Ground truth: join partners found by the (independent) sketch index.
    joins = JoinabilityIndex(mid_store).build()
    tables = mid_store.by_type("table")[:40]
    truth = {}
    for table_id in tables:
        partners = {e.dst for e in joins.joinable(table_id, limit=10)}
        if partners:
            truth[table_id] = partners
    assert len(truth) >= 20

    semantic = SemanticSimilarity(mid_store).build()
    schema = SchemaSimilarity(mid_store)
    ensemble = EnsembleSimilarity(mid_store).build()

    def evaluate():
        return {
            "semantic only": _hit_rate(semantic, truth),
            "schema only": _hit_rate(schema, truth),
            "ensemble": _hit_rate(ensemble, truth),
        }

    rates = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    lines = [f"{'measure':<16}{'top-5 join-partner hit rate':>28}"]
    for name, rate in rates.items():
        lines.append(f"{name:<16}{rate:>27.0%}")
    write_result("E11a_ensemble", "Ensemble vs single similarity measure",
                 "\n".join(lines))

    # Shape: the ensemble is at least as good as the weaker single
    # measure and never worse than 10 points below the better one.
    best_single = max(rates["semantic only"], rates["schema only"])
    worst_single = min(rates["semantic only"], rates["schema only"])
    assert rates["ensemble"] >= worst_single
    assert rates["ensemble"] >= best_single - 0.10


def test_e11_autocomplete_spec_vs_static(benchmark, bench_app):
    """After the spec evolves, spec-driven autocomplete still covers the
    whole query surface; the hardcoded static list silently drifts."""
    spec = bench_app.spec.with_provider(ProviderSpec(
        name="freshness_model",
        endpoint="catalog://newest",  # reuse an existing endpoint
        representation="list",
        category="interaction",
        title="Freshness Model",
    ))
    interface = bench_app.interface.with_spec(spec)

    def coverage():
        fields = interface.language.field_names()
        covered = sum(
            1 for name in fields
            if any(s.text.startswith(name)
                   for s in interface.suggest(name[:3], limit=50))
        )
        return covered / len(fields)

    spec_coverage = benchmark(coverage)

    static_fields = set(HardcodedDiscoveryUI.FIELD_NAMES)
    actual_fields = set(interface.language.field_names())
    static_coverage = len(static_fields & actual_fields) / len(actual_fields)

    write_result(
        "E11b_autocomplete",
        "Spec-driven vs static autocomplete coverage after spec evolution",
        f"query fields in evolved spec: {len(actual_fields)}\n"
        f"spec-driven autocomplete coverage: {spec_coverage:.0%}\n"
        f"hand-kept static list coverage:    {static_coverage:.0%}",
    )
    assert spec_coverage == 1.0
    assert static_coverage < 0.5
