"""E4 — Figures 2 & 3: the provider suite and its generated views.

Times every built-in provider endpoint on a mid-size catalog and verifies
each returns its spec-declared representation — the Figure 2 inventory.
A dedicated case reproduces Figure 3: the joinability provider returning a
graph for an input table.
"""

import pytest

from benchmarks.conftest import write_result
from repro.providers.base import ProviderRequest, RequestContext
from repro.providers.suite import default_spec

#: provider name -> inputs builder (given the store)
PROVIDER_CASES = {
    "recents": lambda store: {},
    "recent_documents": lambda store: {},
    "most_viewed": lambda store: {},
    "newest": lambda store: {},
    "favorites": lambda store: {},
    "owned_by": lambda store: {"user": store.users()[0].id},
    "of_type": lambda store: {"artifact_type": "table"},
    "types": lambda store: {},
    "badges": lambda store: {},
    "badged": lambda store: {"badge": "endorsed"},
    "badged_by": lambda store: {
        "user": next(u.id for u in store.users() if u.role == "manager")
    },
    "tagged": lambda store: {"text": "sales"},
    "team_popular": lambda store: {"team": store.teams()[0].id},
    "team_docs": lambda store: {"team": store.teams()[0].id},
    "joinable": lambda store: {"artifact": store.by_type("table")[0]},
    "lineage": lambda store: {"artifact": store.by_type("table")[0]},
    "lineage_graph": lambda store: {"artifact": store.by_type("table")[0]},
    "similar": lambda store: {"artifact": store.by_type("table")[0]},
    "embedding_map": lambda store: {},
}

_RESULTS: dict[str, tuple[str, int]] = {}


@pytest.mark.parametrize("name", sorted(PROVIDER_CASES))
def test_e4_provider_fetch(benchmark, mid_app, name):
    store = mid_app.store
    spec = default_spec()
    provider = spec.provider(name)
    inputs = PROVIDER_CASES[name](store)
    user = store.users()[0]
    request = ProviderRequest(
        inputs=inputs,
        context=RequestContext(user_id=user.id,
                               team_id=user.team_ids[0], limit=20),
    )

    result = benchmark(mid_app.registry.fetch, provider.endpoint, request)

    assert result.representation == provider.representation
    _RESULTS[name] = (result.representation.value,
                      len(result.artifact_ids()))


def test_e4_write_figure2_table(benchmark, mid_app):
    """Summarise the suite (runs after the parametrized fetches)."""
    spec = default_spec()

    def build_table():
        lines = [f"{'provider':<18}{'category':<14}{'representation':<15}"
                 f"{'artifacts':>10}"]
        for name in sorted(PROVIDER_CASES):
            provider = spec.provider(name)
            representation, count = _RESULTS.get(name, ("-", 0))
            lines.append(
                f"{name:<18}{provider.category:<14}{representation:<15}"
                f"{count:>10}"
            )
        return "\n".join(lines)

    table = benchmark(build_table)
    write_result("E4_providers", "Figure 2 provider suite", table)
    assert len(_RESULTS) == len(PROVIDER_CASES)


def test_e4_figure3_joinability_graph(benchmark, mid_app):
    """Figure 3: 'requires a table as input and returns a graph
    representation of joinability for the input table'."""
    store = mid_app.store
    table_id = store.by_type("table")[0]

    def fetch_graph():
        return mid_app.interface.open_view(
            "joinable", inputs={"artifact": table_id}
        )

    view = benchmark(fetch_graph)
    assert view.representation == "graph"
    assert table_id in view.artifact_ids()
    # column-level labels like "customer_id≈customer_id" must be present
    if view.edges:
        assert any("≈" in e.label for e in view.edges)
