"""BENCH_planner — cost-based planning and lazy top-k trajectory.

Measures, at ~1k and ~50k artifacts:

* a **skewed conjunction** whose leftmost branch is the whole table set
  and whose planned-empty branch matches nothing — naive left-to-right
  evaluation fetches every branch, the planner fetches exactly one;
* a **selective conjunction** (huge branch & rare tag) where ordering and
  the candidate filter shrink the intermediate lists;
* a **large-universe Not** filter query, where the planner subtracts from
  the running intersection instead of materialising the universe-sized
  complement;
* **lazy top-k ranking** (`Ranker.top_k`) versus rank-everything-then-cut
  (`Ranker.rank_ids`) over the full catalog.

The planned evaluator must beat the naive one on the skewed conjunction
at every size, and lazy top-k must beat the full sort at 50k.  Emits
``benchmarks/results/BENCH_planner.json`` plus the usual text table.

Set ``BENCH_PLANNER_SMOKE=1`` to run the small size only (CI smoke).
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog

#: label -> n_tables (the generator adds dashboards/workbooks/documents,
#: so artifact counts land near the labels).
SIZES = {"1k": 550, "50k": 27500}

TOP_K = 50

_rows: dict[str, dict] = {}


def _sizes() -> dict[str, int]:
    if os.environ.get("BENCH_PLANNER_SMOKE"):
        return {"1k": SIZES["1k"]}
    return dict(SIZES)


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _evaluator(store, planning: bool) -> QueryEvaluator:
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store))
    evaluator = QueryEvaluator(
        store,
        registry,
        QueryLanguage(default_spec()),
        Ranker(FieldResolver(store)),
    )
    evaluator.planning = planning
    return evaluator


def _cold_search_s(evaluator, query: str, rounds: int) -> float:
    def run():
        evaluator.engine.invalidate()
        evaluator.search(query, limit=TOP_K)

    return _best_of(run, rounds=rounds)


def _measure(label: str, n_tables: int) -> dict:
    store = generate_catalog(
        SynthConfig(seed=7, n_tables=n_tables,
                    usage_events=max(1000, n_tables // 2))
    )
    planned = _evaluator(store, planning=True)
    naive = _evaluator(store, planning=False)
    rounds = 3 if n_tables < 5000 else 2
    rare_tag = min(
        store.tags_in_use(), key=lambda t: store.index_size("tag", t)
    )

    # Written worst-first so naive evaluation pays the whole table set
    # before discovering the conjunction is empty / tiny.
    skewed = "type: table & badged: endorsed & tagged: no-such-tag-at-all"
    selective = f"type: table & tagged: {rare_tag}"
    negated = f"tagged: {rare_tag} & !type: table"

    results = {}
    for name, query in (
        ("skewed", skewed), ("selective", selective), ("not", negated)
    ):
        results[f"{name}_planned_ms"] = (
            _cold_search_s(planned, query, rounds) * 1000
        )
        results[f"{name}_naive_ms"] = (
            _cold_search_s(naive, query, rounds) * 1000
        )

    planned.engine.invalidate()
    explain = planned.search(skewed)
    fetches_skipped = explain.plan.fetches_skipped

    # Lazy top-k vs rank-everything-then-cut over the full catalog.
    ids = store.artifact_ids()
    weights = planned.language.spec.global_ranking
    ranker = planned.ranker
    full_sort_s = _best_of(
        lambda: ranker.rank_ids(ids, weights)[:TOP_K], rounds=rounds
    )
    top_k_s = _best_of(
        lambda: ranker.top_k(ids, weights, TOP_K), rounds=rounds
    )

    return {
        "artifacts": store.artifact_count,
        **results,
        "skewed_fetches_skipped": fetches_skipped,
        "full_sort_ms": full_sort_s * 1000,
        "top_k_ms": top_k_s * 1000,
        "top_k_speedup": full_sort_s / top_k_s if top_k_s else 0.0,
    }


def test_bench_planner_sizes():
    for label, n_tables in _sizes().items():
        row = _measure(label, n_tables)
        _rows[label] = row
        # The planned-empty skip is the planner's headline saving: the
        # planned evaluator must beat naive left-to-right at every size.
        assert row["skewed_planned_ms"] < row["skewed_naive_ms"], (
            f"{label}: planned skewed-And slower than naive"
        )
        assert row["skewed_fetches_skipped"] >= 2
        # Lazy top-k must win where it matters (50k); at toy sizes only
        # guard against a gross regression — the timings are noise-bound.
        if label == "50k":
            assert row["top_k_ms"] < row["full_sort_ms"], (
                "lazy top-k slower than full sort at 50k"
            )
        else:
            assert row["top_k_ms"] <= row["full_sort_ms"] * 1.5


def test_bench_planner_report():
    assert _rows, "size benchmark did not run"
    lines = [
        f"{'size':>6}{'artifacts':>10}{'skew plan':>11}{'skew naive':>12}"
        f"{'sel plan':>10}{'sel naive':>11}{'not plan':>10}{'not naive':>11}"
        f"{'sort ms':>9}{'topk ms':>9}"
    ]
    for label, row in _rows.items():
        lines.append(
            f"{label:>6}{row['artifacts']:>10}"
            f"{row['skewed_planned_ms']:>11.1f}"
            f"{row['skewed_naive_ms']:>12.1f}"
            f"{row['selective_planned_ms']:>10.1f}"
            f"{row['selective_naive_ms']:>11.1f}"
            f"{row['not_planned_ms']:>10.1f}"
            f"{row['not_naive_ms']:>11.1f}"
            f"{row['full_sort_ms']:>9.1f}"
            f"{row['top_k_ms']:>9.1f}"
        )
    write_result(
        "BENCH_planner",
        "Cost-based planning vs naive evaluation; lazy top-k vs full sort",
        "\n".join(lines),
    )
    payload = {"sizes": _rows}
    path = Path(RESULTS_DIR) / "BENCH_planner.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
