"""BENCH_resilience — circuit breakers under a persistently failing provider.

One leaf of a two-leaf Or query is broken for the whole run: every
invocation burns a 250ms latency spike (on a simulation clock) and then
fails, and the retry middleware pays that three times per fetch.  The
workload runs the same 400 searches twice:

* **breaker off** — every search re-invokes the broken endpoint and pays
  the full retry schedule before surfacing the failure;
* **breaker on** (failure threshold 3) — the first three fetch failures
  trip the endpoint's breaker, after which searches skip the broken leaf
  instantly and return degraded results from the healthy leaf.

Latency is simulated-clock time per search (error or result — either way
it is what a user waits), so the numbers are exact and deterministic.
The breaker-on p99 must be **strictly** below breaker-off.  Emits
``benchmarks/results/BENCH_resilience.json`` plus the usual text table.

Set ``BENCH_RESILIENCE_SMOKE=1`` to run on a smaller catalog (CI smoke).
"""

import json
import math
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.core.query.evaluator import QueryEvaluator
from repro.core.query.language import QueryLanguage
from repro.core.ranking import Ranker
from repro.errors import ProviderError
from repro.providers.builtin import BuiltinProviders, install_builtin_endpoints
from repro.providers.execution import ExecutionEngine, ExecutionPolicy
from repro.providers.faults import FlakyEndpoint, LatencySpikeEndpoint
from repro.providers.fields import FieldResolver
from repro.providers.registry import EndpointRegistry
from repro.providers.suite import default_spec
from repro.synth import SynthConfig, generate_catalog
from repro.util.clock import SimulationClock

#: Enough searches that the three breaker-warming failures fall outside
#: the p99 nearest-rank index (ceil(0.99 * 400) = 396 < 398).
SEARCHES = 400
QUERY = "badged: endorsed | type: table"
BROKEN = "catalog://badged"
SPIKE_MS = 250.0
ATTEMPTS = 3
THRESHOLD = 3

_rows: dict[str, dict] = {}


def _n_tables() -> int:
    return 120 if os.environ.get("BENCH_RESILIENCE_SMOKE") else 550


def _percentile(sorted_values: list[float], q: float) -> float:
    index = max(0, math.ceil(q / 100.0 * len(sorted_values)) - 1)
    return sorted_values[index]


def _evaluator(store, breaker_on: bool):
    registry = EndpointRegistry()
    install_builtin_endpoints(registry, BuiltinProviders(store))
    clock = SimulationClock()
    original = registry.resolve(BROKEN)
    # latency first, then failure: each doomed invocation costs a full
    # 250ms spike of simulated time before the retry middleware sees it
    broken = LatencySpikeEndpoint(
        FlakyEndpoint(original, fail_on=lambda i: True, name="badged"),
        clock,
        [SPIKE_MS],
    )
    registry.register(BROKEN, broken, replace=True)
    policy = ExecutionPolicy.defaults().replace(attempts=ATTEMPTS)
    if breaker_on:
        policy = policy.for_endpoint(
            BROKEN, breaker_failure_threshold=THRESHOLD
        )
    else:
        policy = policy.replace(breaker_enabled=False)
    engine = ExecutionEngine(registry, store=store, policy=policy, clock=clock)
    evaluator = QueryEvaluator(
        store, engine, QueryLanguage(default_spec()), Ranker(FieldResolver(store))
    )
    return evaluator, clock


def _run_workload(store, breaker_on: bool) -> dict:
    evaluator, clock = _evaluator(store, breaker_on)
    latencies = []
    failed = degraded = 0
    for _ in range(SEARCHES):
        started = clock.now()
        try:
            result = evaluator.search(QUERY, limit=50)
        except ProviderError:
            failed += 1
        else:
            degraded += int(result.degraded)
        latencies.append((clock.now() - started) * 1000.0)
    latencies.sort()
    stats = evaluator.engine.stats
    return {
        "p50_ms": _percentile(latencies, 50),
        "p99_ms": _percentile(latencies, 99),
        "mean_ms": sum(latencies) / len(latencies),
        "failed_searches": failed,
        "degraded_searches": degraded,
        "breaker_opens": stats.breaker_opens,
        "breaker_rejections": stats.breaker_rejections,
    }


def test_bench_resilience_breaker_cuts_tail_latency():
    store = generate_catalog(SynthConfig(seed=7, n_tables=_n_tables()))
    off = _run_workload(store, breaker_on=False)
    on = _run_workload(store, breaker_on=True)
    _rows["breaker_off"] = off
    _rows["breaker_on"] = on
    _rows["_meta"] = {
        "artifacts": store.artifact_count,
        "searches": SEARCHES,
        "spike_ms": SPIKE_MS,
        "attempts": ATTEMPTS,
        "failure_threshold": THRESHOLD,
    }

    # without the breaker every search pays the full retry schedule
    assert off["failed_searches"] == SEARCHES
    assert off["p50_ms"] >= SPIKE_MS * ATTEMPTS

    # with it, only the threshold-warming searches fail live; the rest
    # degrade gracefully and skip the broken leaf
    assert on["failed_searches"] == THRESHOLD
    assert on["degraded_searches"] == SEARCHES - THRESHOLD
    assert on["breaker_opens"] >= 1

    # the headline: the breaker strictly beats no-breaker at the tail
    assert on["p99_ms"] < off["p99_ms"], (
        f"breaker-on p99 {on['p99_ms']:.1f}ms not below "
        f"breaker-off {off['p99_ms']:.1f}ms"
    )
    assert on["p50_ms"] < off["p50_ms"]


def test_bench_resilience_report():
    assert "breaker_on" in _rows, "workload benchmark did not run"
    lines = [
        f"{'config':>12}{'p50 ms':>9}{'p99 ms':>9}{'mean ms':>9}"
        f"{'failed':>8}{'degraded':>10}{'opens':>7}{'rejects':>9}"
    ]
    for label in ("breaker_off", "breaker_on"):
        row = _rows[label]
        lines.append(
            f"{label:>12}{row['p50_ms']:>9.1f}{row['p99_ms']:>9.1f}"
            f"{row['mean_ms']:>9.1f}{row['failed_searches']:>8}"
            f"{row['degraded_searches']:>10}{row['breaker_opens']:>7}"
            f"{row['breaker_rejections']:>9}"
        )
    meta = _rows["_meta"]
    lines.append(
        f"\n{meta['searches']} searches, one broken Or-leaf "
        f"({meta['spike_ms']:.0f}ms spike x {meta['attempts']} attempts), "
        f"threshold {meta['failure_threshold']}, "
        f"{meta['artifacts']} artifacts (simulated clock)"
    )
    write_result(
        "BENCH_resilience",
        "Search latency with a persistently failing provider: "
        "circuit breaker on vs off",
        "\n".join(lines),
    )
    path = Path(RESULTS_DIR) / "BENCH_resilience.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_rows, indent=2) + "\n", encoding="utf-8")
