"""BENCH_load — concurrent multi-tenant serving: naive vs batched engine.

The load harness (:mod:`repro.load`) drives 1000 simulated sessions —
4000 operations, Zipf-skewed over users and queries, the study-task
query mix plus catalog writes — from 64 worker threads over one shared
``WorkbookApp``.  Every provider invocation pays a 25 ms injected
latency (a remote metadata service) and the engine's fetch pool is held
at 4 workers, so provider capacity is the scarce resource it is in
production.  Each tenant team carries its own customization (a hidden
overview provider) and alternating teams a policy overlay; the harness
verifies per-op that neither leaks across tenants.

Two configurations run the identical seeded workload:

* **naive** — ``single_flight=False``: concurrent identical fetches each
  invoke the provider and each occupy a pool slot;
* **batched** — cross-request single-flight: one provider call, N
  waiters, and ``execute_many`` keeps waiters out of the pool entirely.

The batched engine must beat naive on p99 latency *and* throughput, with
zero errors and zero cross-tenant leaks in both.  Emits
``benchmarks/results/BENCH_load.json`` plus the usual text table.

Set ``BENCH_LOAD_SMOKE=1`` for a small-N run (CI smoke): correctness
invariants only — comparative latency claims need the full scale.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.load import LoadConfig, run_load
from repro.providers.execution import ExecutionPolicy
from repro.synth import SynthConfig, generate_catalog

SMOKE = bool(os.environ.get("BENCH_LOAD_SMOKE"))

_rows: dict[str, dict] = {}


def _config() -> LoadConfig:
    if SMOKE:
        return LoadConfig(
            sessions=60,
            ops_per_session=4,
            concurrency=8,
            provider_latency_ms=5.0,
            zipf_s=2.0,
            search_weight=0.40,
            overview_weight=0.25,
            explore_weight=0.10,
            suggest_weight=0.10,
            touch_weight=0.15,
            trace_slowest=5,
        )
    return LoadConfig(
        sessions=1000,
        ops_per_session=4,
        concurrency=64,
        provider_latency_ms=25.0,
        zipf_s=2.0,
        search_weight=0.40,
        overview_weight=0.25,
        explore_weight=0.10,
        suggest_weight=0.10,
        touch_weight=0.15,
        trace_slowest=5,
    )


def _run(single_flight: bool) -> dict:
    # A fresh catalog per run: touch ops mutate usage, and both modes
    # must see identical starting state.
    store = generate_catalog(
        SynthConfig(seed=7, n_tables=60 if SMOKE else 150)
    )
    report = run_load(
        store,
        _config(),
        single_flight=single_flight,
        policy=ExecutionPolicy.defaults().replace(
            max_workers=2 if SMOKE else 4
        ),
    )
    return report.to_dict()


def test_bench_load_batched_beats_naive():
    naive = _run(single_flight=False)
    batched = _run(single_flight=True)
    _rows["naive"] = naive
    _rows["batched"] = batched

    for row in (naive, batched):
        assert row["errors"] == 0
        assert row["degradation"]["errors"] == 0
        assert row["isolation"]["checks"] > 0
        assert row["isolation"]["violations"] == 0

    assert naive["single_flights"] == 0
    assert batched["single_flights"] > 0
    assert batched["provider_calls"] < naive["provider_calls"]

    for row in (naive, batched):
        # trace_slowest=5: the report must carry reconstructed op traces.
        assert 0 < len(row["slowest"]) <= 5
        for entry in row["slowest"]:
            assert entry["op"].startswith("op.")
            assert entry["spans"] and entry["tree"]

    if not SMOKE:
        # The headline: at 1k concurrent sessions over a scarce provider
        # pool, coalescing wins both tail latency and throughput.
        assert batched["latency_ms"]["overall"]["p99"] < \
            naive["latency_ms"]["overall"]["p99"], (
                f"batched p99 {batched['latency_ms']['overall']['p99']:.0f}ms "
                f"not below naive {naive['latency_ms']['overall']['p99']:.0f}ms"
            )
        assert batched["throughput_ops_s"] > naive["throughput_ops_s"]


def test_bench_load_report():
    assert "batched" in _rows, "load benchmark did not run"
    lines = [
        f"{'config':>9}{'ops':>6}{'ops/s':>8}{'p50 ms':>8}{'p99 ms':>9}"
        f"{'hit':>7}{'sflt':>6}{'calls':>7}{'stale':>7}{'leaks':>6}"
    ]
    for label in ("naive", "batched"):
        row = _rows[label]
        overall = row["latency_ms"]["overall"]
        lines.append(
            f"{label:>9}{row['ops']:>6}{row['throughput_ops_s']:>8.1f}"
            f"{overall['p50']:>8.2f}{overall['p99']:>9.1f}"
            f"{row['hit_rate']:>7.3f}{row['single_flights']:>6}"
            f"{row['provider_calls']:>7}"
            f"{row['degradation']['stale_served']:>7}"
            f"{row['isolation']['violations']:>6}"
        )
    meta = _rows["batched"]
    lines.append(
        f"\n{meta['sessions']} sessions x {meta['concurrency']} threads, "
        f"{meta['provider_latency_ms']:.0f}ms injected provider latency, "
        f"Zipf-skewed users+queries, per-tenant customizations and policy "
        f"overlays, seed {meta['seed']}"
    )
    write_result(
        "BENCH_load",
        "Concurrent multi-tenant serving: cross-request single-flight "
        "batching vs naive shared engine",
        "\n".join(lines),
    )
    path = Path(RESULTS_DIR) / "BENCH_load.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_rows, indent=2) + "\n", encoding="utf-8")
