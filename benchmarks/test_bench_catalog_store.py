"""BENCH_catalog_store — cold start and memory: in-memory vs sqlite backend.

Measures, at ~1k, ~50k and ~200k artifacts, the two restart paths:

* **full rebuild** — the pre-backend-split restart: ``load_catalog`` on a
  JSON snapshot re-adds every artifact/user/event into a fresh in-memory
  store (O(catalog) work and memory), then answers one probe query;
* **lazy cold start** — ``CatalogStore.open`` on the sqlite file reads
  only the version counters and state rows, then answers the same probe
  straight from the persisted indexes (O(touched) work and memory).

Peak memory is tracked with ``tracemalloc`` — a deterministic proxy for
peak RSS that counts Python-heap allocations (sqlite's own page cache is
outside it, but that cache is bounded and identical across runs, while
the rebuild path's artifact dicts dominate the Python heap).

Hard gates: the sqlite lazy cold start must be at least **10× faster**
than the full rebuild at 200k artifacts, the first query after a restart
must land within **2× of a warm query** (plus a small absolute slack for
page faults), cold-start peak memory must stay well under the rebuild
peak, and the probe must *not* hydrate the entity domain — laziness is
asserted, not assumed.  Emits ``benchmarks/results/
BENCH_catalog_store.json`` plus the usual text table.

Set ``BENCH_CATALOG_STORE_SMOKE=1`` to run the small size only (CI
smoke); the 10× gate only applies at the 200k size.
"""

import contextlib
import json
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.catalog.persistence import load_catalog, save_catalog
from repro.catalog.store import CatalogStore
from repro.synth import SynthConfig, generate_catalog, synth_ingestors
from repro.util.textutil import tokenize

#: label -> n_tables (the generator adds dashboards/workbooks/documents,
#: so artifact counts land near the labels).
SIZES = {"1k": 550, "50k": 27500, "200k": 110000}

_rows: dict[str, dict] = {}


def _sizes() -> dict[str, int]:
    if os.environ.get("BENCH_CATALOG_STORE_SMOKE"):
        return {"1k": SIZES["1k"]}
    return dict(SIZES)


def _config(n_tables: int) -> SynthConfig:
    # Fewer sample values per column than the default keeps the JSON
    # snapshot (and generation time) proportionate at 200k artifacts
    # without changing what the bench measures.
    return SynthConfig(
        seed=7,
        n_tables=n_tables,
        usage_events=max(1000, n_tables // 4),
        samples_per_column=8,
    )


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _probe_tokens(store: CatalogStore) -> list[str]:
    """Two tokens from a mid-catalog table name — always ≥1 hit."""
    ids = store.artifact_ids()
    name = store.artifact(ids[len(ids) // 2]).name
    return tokenize(name)[:2]


def _probe(store: CatalogStore, tokens: list[str]):
    hits = store.search_tokens(tokens)
    universe = store.index_size("type", "table")
    return hits, universe


def _timed_with_peak(fn) -> tuple[float, float, object]:
    """(elapsed_s, python_heap_peak_mb, fn()) under tracemalloc."""
    tracemalloc.start()
    started = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return elapsed, peak / 1e6, result


def _measure(label: str, n_tables: int) -> dict:
    config = _config(n_tables)
    with tempfile.TemporaryDirectory(prefix="bench_catalog_") as tmp:
        json_path = Path(tmp) / "catalog.json"
        db_path = Path(tmp) / "catalog.db"

        started = time.perf_counter()
        seed_store = generate_catalog(config)
        build_s = time.perf_counter() - started
        artifacts = seed_store.artifact_count
        tokens = _probe_tokens(seed_store)
        expected = _probe(seed_store, tokens)

        save_catalog(seed_store, json_path)
        json_mb = json_path.stat().st_size / 1e6
        del seed_store

        # Persist the same catalog into the sqlite backend.  Ingestion
        # happens once per lifetime of the store file (fingerprinted),
        # so it is *not* part of the restart path being measured.
        started = time.perf_counter()
        with CatalogStore.open(db_path) as target:
            synth_ingestors(config).ingest_into(target)
        ingest_s = time.perf_counter() - started
        db_mb = db_path.stat().st_size / 1e6

        # Restart path A: full in-memory rebuild from the JSON snapshot.
        def rebuild():
            store = load_catalog(json_path)
            return store, _probe(store, tokens)

        rebuild_s, rebuild_peak_mb, (rebuilt, rebuilt_probe) = (
            _timed_with_peak(rebuild)
        )
        assert rebuilt_probe == expected
        del rebuilt

        # Restart path B: lazy sqlite cold start, same probe.
        def cold_start():
            store = CatalogStore.open(db_path)
            return store, _probe(store, tokens)

        cold_s, cold_peak_mb, (cold_store, cold_probe) = (
            _timed_with_peak(cold_start)
        )
        assert cold_probe == expected
        hydrated = cold_store.storage_info()["hydrated"]
        entities_hydrated = bool(hydrated["entities"])
        cold_store.close()

        # First-query-vs-warm on one more fresh connection: the cold
        # probe pays the index SELECTs, warm repeats hit sqlite's page
        # cache and the store's memoised id tuple.
        with contextlib.closing(CatalogStore.open(db_path)) as store:
            started = time.perf_counter()
            _probe(store, tokens)
            first_query_ms = (time.perf_counter() - started) * 1000
            warm_query_ms = (
                _best_of(lambda: _probe(store, tokens), rounds=5) * 1000
            )

    return {
        "artifacts": artifacts,
        "build_s": build_s,
        "json_mb": json_mb,
        "db_mb": db_mb,
        "ingest_s": ingest_s,
        "rebuild_s": rebuild_s,
        "rebuild_peak_mb": rebuild_peak_mb,
        "cold_s": cold_s,
        "cold_peak_mb": cold_peak_mb,
        "cold_speedup": rebuild_s / cold_s if cold_s else 0.0,
        "first_query_ms": first_query_ms,
        "warm_query_ms": warm_query_ms,
        "probe_hits": len(expected[0]),
        "entities_hydrated_by_probe": entities_hydrated,
    }


def test_bench_catalog_store_sizes():
    for label, n_tables in _sizes().items():
        row = _measure(label, n_tables)
        _rows[label] = row
        # Laziness is the whole point: the probe must be answered from
        # the persisted indexes without pulling entities into memory.
        assert not row["entities_hydrated_by_probe"], label
        # The lazy cold start must beat the full rebuild at every size,
        # and by >=10x at the headline 200k size.
        assert row["cold_s"] < row["rebuild_s"], (
            f"{label}: sqlite cold start slower than full rebuild"
        )
        if label == "200k":
            assert row["cold_speedup"] >= 10.0, (
                f"200k: lazy cold start only {row['cold_speedup']:.1f}x "
                "faster than full rebuild (need >=10x)"
            )
        # Cold-start memory is O(touched), not O(catalog).
        if label == "1k":
            assert row["cold_peak_mb"] < row["rebuild_peak_mb"]
        else:
            assert row["cold_peak_mb"] * 5 < row["rebuild_peak_mb"], (
                f"{label}: cold-start peak {row['cold_peak_mb']:.1f}MB not "
                f"well under rebuild peak {row['rebuild_peak_mb']:.1f}MB"
            )
        # First query after restart within 2x of warm (+5ms fault slack).
        assert (
            row["first_query_ms"] <= 2 * row["warm_query_ms"] + 5.0
        ), (
            f"{label}: first query {row['first_query_ms']:.2f}ms vs warm "
            f"{row['warm_query_ms']:.2f}ms"
        )


def test_bench_catalog_store_report():
    assert _rows, "size benchmark did not run"
    lines = [
        f"{'size':>6}{'artifacts':>10}{'rebuild s':>11}{'cold s':>9}"
        f"{'speedup':>9}{'reb MB':>8}{'cold MB':>9}"
        f"{'first ms':>10}{'warm ms':>9}{'db MB':>7}"
    ]
    for label, row in _rows.items():
        lines.append(
            f"{label:>6}{row['artifacts']:>10}"
            f"{row['rebuild_s']:>11.2f}"
            f"{row['cold_s']:>9.4f}"
            f"{row['cold_speedup']:>9.0f}"
            f"{row['rebuild_peak_mb']:>8.1f}"
            f"{row['cold_peak_mb']:>9.2f}"
            f"{row['first_query_ms']:>10.2f}"
            f"{row['warm_query_ms']:>9.2f}"
            f"{row['db_mb']:>7.1f}"
        )
    write_result(
        "BENCH_catalog_store",
        "Restart cost: full in-memory rebuild vs lazy sqlite cold start",
        "\n".join(lines),
    )
    payload = {"sizes": _rows}
    path = Path(RESULTS_DIR) / "BENCH_catalog_store.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
