"""E6 — Figure 6: the six dynamically generated view types.

Times view generation for every representation from one catalog and
records the inventory (view type, artifact count, structural facts) that
corresponds to the Figure 6 montage.
"""

import pytest

from benchmarks.conftest import write_result

#: representation -> (provider, inputs builder)
VIEW_CASES = {
    "tiles": ("most_viewed", lambda store: {}),
    "list": ("of_type", lambda store: {"artifact_type": "table"}),
    "hierarchy": ("lineage",
                  lambda store: {"artifact": store.by_type("table")[0]}),
    "graph": ("joinable",
              lambda store: {"artifact": store.by_type("table")[0]}),
    "categories": ("types", lambda store: {}),
    "embedding": ("embedding_map", lambda store: {}),
}

_BUILT = {}


@pytest.mark.parametrize("representation", sorted(VIEW_CASES))
def test_e6_generate_view(benchmark, mid_app, representation):
    provider_name, inputs_fn = VIEW_CASES[representation]
    store = mid_app.store
    inputs = inputs_fn(store)
    user = store.users()[0]

    def build():
        return mid_app.interface.open_view(
            provider_name, inputs=inputs, user_id=user.id, limit=20
        )

    view = benchmark(build)
    assert view.representation == representation
    assert not view.is_empty()
    _BUILT[representation] = view


def test_e6_write_figure6_table(benchmark, mid_app):
    def build_table():
        lines = [f"{'view':<12}{'provider':<16}{'artifacts':>10}  structure"]
        for representation in sorted(VIEW_CASES):
            view = _BUILT.get(representation)
            if view is None:
                continue
            if representation == "hierarchy":
                structure = f"depth {view.max_depth()}"
            elif representation == "graph":
                structure = f"{len(view.edges)} edges"
            elif representation == "categories":
                structure = f"{len(view.groups)} groups"
            elif representation == "embedding":
                bounds = view.bounds()
                structure = (f"x∈[{bounds[0]:.1f},{bounds[2]:.1f}] "
                             f"y∈[{bounds[1]:.1f},{bounds[3]:.1f}]")
            else:
                structure = "ranked cards"
            lines.append(
                f"{representation:<12}{view.provider_name:<16}"
                f"{view.count():>10}  {structure}"
            )
        return "\n".join(lines)

    table = benchmark(build_table)
    write_result("E6_views", "Figure 6: six generated view types", table)
    assert len(_BUILT) == 6


def test_e6_render_all_views_text(benchmark, mid_app):
    """Rendering the full set must stay interactive-speed."""
    from repro.core.render import render_view_text

    views = list(_BUILT.values())
    assert len(views) == 6

    def render_all():
        return [render_view_text(view) for view in views]

    rendered = benchmark(render_all)
    assert all(rendered)


def test_e6_render_all_views_html(benchmark, mid_app):
    from repro.core.render import render_view_html

    views = list(_BUILT.values())

    def render_all():
        return [render_view_html(view) for view in views]

    rendered = benchmark(render_all)
    assert all(fragment.startswith("<section>") for fragment in rendered)
