"""E5 — Figure 5 / Section 1 query examples.

Parses, compiles and evaluates the paper's verbatim queries against the
study catalog, timing each stage.  The flagship query must return exactly
its intended target; autocomplete must suggest admissible fields/values
at each position of the query as it is typed.
"""

import pytest

from benchmarks.conftest import write_result
from repro.core.query.parser import parse_query

FLAGSHIP = ("type: table owned by: 'Alex' badged: endorsed "
            "badged by: 'Mike' & 'sales'")
PREFIX_EXAMPLE = ":recent_documents() & bit"
TASK3 = 'type: workbook created by: "John Doe"'

PAPER_QUERIES = [FLAGSHIP, PREFIX_EXAMPLE, TASK3]


def test_e5_parse_flagship(benchmark):
    node = benchmark(parse_query, FLAGSHIP)
    assert len(node.children) == 5


def test_e5_compile_flagship(benchmark, bench_app):
    language = bench_app.interface.language
    compiled = benchmark(language.compile, FLAGSHIP)
    assert compiled.providers_used() == [
        "of_type", "owned_by", "badged", "badged_by",
    ]
    assert compiled.text_terms() == ["sales"]


def test_e5_evaluate_flagship(benchmark, bench_app):
    session_search = bench_app.interface.search

    def run():
        result, _ = session_search(FLAGSHIP, user_id="user-alex")
        return result

    result = benchmark(run)
    names = [bench_app.store.artifact(a).name
             for a in result.artifact_ids()]
    assert names == ["SALES_NUMBERS"]

    rows = [f"{'query':<62}{'results':>8}"]
    for query in PAPER_QUERIES:
        res, _ = session_search(query, user_id="user-alex")
        rows.append(f"{query:<62}{res.total:>8}")
    write_result("E5_queries", "Paper query examples", "\n".join(rows))


def test_e5_evaluate_task3(benchmark, bench_app):
    def run():
        result, _ = bench_app.interface.search(TASK3)
        return result

    result = benchmark(run)
    types = {
        bench_app.store.artifact(a).artifact_type.value
        for a in result.artifact_ids()
    }
    assert types == {"workbook"}
    assert result.total == 3


@pytest.mark.parametrize("partial,expected_kind", [
    ("ow", "field"),
    ("owned_by: ", "value"),
    ("badged: ", "value"),
    (":rec", "provider"),
    ("type: table ", "operator"),
])
def test_e5_autocomplete_positions(benchmark, bench_app, partial,
                                   expected_kind):
    suggestions = benchmark(bench_app.interface.suggest, partial)
    assert suggestions
    assert suggestions[0].kind == expected_kind


def test_e5_pill_text_equivalence(benchmark, bench_app):
    """The two search interfaces (§5.3) compile to the same AST."""
    from repro.core.query.pills import PillQuery

    def build():
        return (
            PillQuery()
            .field("type", "workbook")
            .field("created_by", "John Doe")
            .to_node()
        )

    node = benchmark(build)
    assert node == parse_query(TASK3)
